//! Thread-safe caching OSN access: [`CachedOsn`] + [`OsnSession`].
//!
//! The paper's cost model is API calls, and a walk revisits nodes
//! constantly — on the smoke perf matrix a large fraction of raw calls are
//! repeats a real crawler would memoize. This module makes the paper's
//! "distinct API calls" metric first-class:
//!
//! * [`GraphOsn`] — a pure, `Sync` graph view implementing
//!   [`OsnBackend`]: no interior mutability, so one instance can serve any
//!   number of threads.
//! * [`CachedOsn`] — wraps any [`OsnBackend`] with **sharded-lock LRU
//!   caches** for neighbor lists and label sets, plus [`CallStats`]
//!   accounting that distinguishes *logical* calls (what estimators issue
//!   and pay their budgets in) from *misses* (what actually reaches the
//!   backend). `Sync` whenever the backend is.
//! * [`OsnSession`] — a lightweight per-query handle implementing
//!   [`OsnApi`]: it counts its own logical calls and carries its own
//!   budget (so concurrent queries never corrupt each other's stopping
//!   rules) while sharing the cache underneath. Sessions are cheap to
//!   create — one per replicate/query is the intended pattern.
//!
//! # Determinism
//!
//! Cache hits return exactly the bytes the backend would have returned, so
//! an estimator run against a session is **bit-identical** (same
//! estimates, same RNG stream, same logical-call sequence) to a run
//! against the uncached backend — enforced by the
//! `proptest_cached_equivalence` suite. Misses are counted under the shard
//! lock (the backend fetch happens while the lock is held), so with
//! unbounded capacity the total miss count equals the number of distinct
//! nodes requested per endpoint, independent of thread interleaving.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use labelcount_graph::{LabelId, LabeledGraph, NodeId};

use crate::api::{OsnApi, OsnBackend};
use crate::guard::SliceRef;

/// A [`LabeledGraph`] exposed as a raw [`OsnBackend`]: no counters, no
/// budget, no cells — just borrows. `Sync`, so a [`CachedOsn<GraphOsn>`]
/// can fan queries across threads.
///
/// This type deliberately does **not** implement [`OsnApi`]: handing it
/// directly to an estimator would break budget accounting. Estimators
/// reach it through [`OsnSession`]s.
pub struct GraphOsn<'g> {
    graph: &'g LabeledGraph,
    max_degree: usize,
}

impl<'g> GraphOsn<'g> {
    /// Wraps a graph as a raw backend.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        let max_degree = graph.nodes().map(|u| graph.degree(u)).max().unwrap_or(0);
        GraphOsn { graph, max_degree }
    }

    /// Evaluation-side escape hatch: the underlying graph, for
    /// ground-truth computation. Estimators must not use this.
    pub fn ground_truth_graph(&self) -> &'g LabeledGraph {
        self.graph
    }
}

impl OsnBackend for GraphOsn<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn max_degree_bound(&self) -> usize {
        self.max_degree
    }

    fn fetch_neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId> {
        SliceRef::Borrowed(self.graph.neighbors(u))
    }

    fn fetch_labels(&self, u: NodeId) -> SliceRef<'_, LabelId> {
        SliceRef::Borrowed(self.graph.labels(u))
    }
}

/// Sizing knobs for [`CachedOsn`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Target cached entries **per endpoint kind** (neighbor lists and
    /// label sets each get this many). `None` = unbounded (every distinct
    /// node is fetched from the backend exactly once). The effective cap
    /// is rounded **up** to a multiple of the shard count (at least one
    /// entry per shard), so the cache may hold up to `shards − 1` more
    /// entries than configured — rounding up rather than down keeps the
    /// configured value a lower bound and no shard starved.
    pub capacity: Option<usize>,
    /// Number of lock shards per endpoint kind (rounded up to a power of
    /// two, minimum 1). More shards = less contention under parallel
    /// replication.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: None,
            shards: 64,
        }
    }
}

/// Snapshot of a cache's call accounting.
///
/// *Logical* calls are what estimators issue (and spend budget on);
/// *misses* are the subset that reached the backend. The paper's "distinct
/// API calls" metric is exactly the miss count of an unbounded cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Logical neighbor-list calls issued through sessions.
    pub logical_neighbor_calls: u64,
    /// Logical profile (label) calls issued through sessions.
    pub logical_label_calls: u64,
    /// Neighbor-list calls that missed the cache and hit the backend.
    pub neighbor_misses: u64,
    /// Profile calls that missed the cache and hit the backend.
    pub label_misses: u64,
}

impl CallStats {
    /// Total logical calls of both kinds.
    pub fn logical_calls(&self) -> u64 {
        self.logical_neighbor_calls + self.logical_label_calls
    }

    /// Total backend (miss) calls of both kinds — what a caching crawler
    /// actually pays.
    pub fn misses(&self) -> u64 {
        self.neighbor_misses + self.label_misses
    }

    /// Logical calls absorbed by the cache.
    pub fn hits(&self) -> u64 {
        self.logical_calls().saturating_sub(self.misses())
    }

    /// Fraction of logical calls absorbed by the cache (`0.0` when no
    /// logical call has been issued yet).
    pub fn hit_rate(&self) -> f64 {
        let logical = self.logical_calls();
        if logical == 0 {
            0.0
        } else {
            self.hits() as f64 / logical as f64
        }
    }
}

/// Slot index sentinel for "no entry".
const NIL: usize = usize::MAX;

/// One LRU shard: a slab of entries chained into a doubly-linked recency
/// list, with a `HashMap` index. All operations are O(1).
struct LruShard<T> {
    map: HashMap<u32, usize>,
    slots: Vec<LruSlot<T>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

struct LruSlot<T> {
    key: u32,
    value: Arc<[T]>,
    prev: usize,
    next: usize,
}

impl<T> LruShard<T> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key` without touching recency — the read-lock fast path
    /// for unbounded shards, where eviction (and hence recency) never
    /// happens.
    fn peek(&self, key: u32) -> Option<Arc<[T]>> {
        self.map
            .get(&key)
            .map(|&i| Arc::clone(&self.slots[i].value))
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: u32) -> Option<Arc<[T]>> {
        let i = *self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(Arc::clone(&self.slots[i].value))
    }

    /// Inserts `key → value`, evicting the least recently used entry when
    /// the shard is full. The caller guarantees `key` is absent.
    fn insert(&mut self, key: u32, value: Arc<[T]>) {
        debug_assert!(!self.map.contains_key(&key));
        let i = if self.slots.len() < self.capacity {
            self.slots.push(LruSlot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Reuse the LRU slot (capacity >= 1, so tail exists).
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            self.slots[i].key = key;
            self.slots[i].value = value;
            i
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A thread-safe, call-counting, caching wrapper around an
/// [`OsnBackend`].
///
/// Neighbor lists and label sets get independent sharded-lock LRU caches;
/// [`CallStats`] separates logical calls from backend misses. Queries run
/// through [`OsnSession`]s ([`CachedOsn::session`]), which add per-query
/// logical accounting and budgets on top of the shared cache.
///
/// ```
/// use labelcount_graph::{GraphBuilder, NodeId};
/// use labelcount_osn::{CachedOsn, GraphOsn, OsnApi};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
///
/// let cache = CachedOsn::new(GraphOsn::new(&g));
/// let session = cache.session();
/// session.neighbors(NodeId(1)); // miss: fetched from the backend
/// session.neighbors(NodeId(1)); // hit: served from the cache
/// assert_eq!(session.api_calls(), 2); // budgets are paid in logical calls
/// drop(session); // logical totals flush into the shared stats
/// let stats = cache.stats();
/// assert_eq!(stats.logical_neighbor_calls, 2);
/// assert_eq!(stats.neighbor_misses, 1);
/// ```
pub struct CachedOsn<B> {
    backend: B,
    neighbor_shards: Box<[RwLock<LruShard<NodeId>>]>,
    label_shards: Box<[RwLock<LruShard<LabelId>>]>,
    shard_mask: usize,
    unbounded: bool,
    logical_neighbor: AtomicU64,
    logical_label: AtomicU64,
    neighbor_misses: AtomicU64,
    label_misses: AtomicU64,
}

impl<B: OsnBackend> CachedOsn<B> {
    /// Wraps `backend` with an unbounded cache (default shard count).
    pub fn new(backend: B) -> Self {
        CachedOsn::with_config(backend, CacheConfig::default())
    }

    /// Wraps `backend` with explicit capacity/sharding.
    pub fn with_config(backend: B, cfg: CacheConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        let per_shard = match cfg.capacity {
            // Ceil division: the effective total is the configured value
            // rounded up to a shard multiple (see `CacheConfig::capacity`).
            Some(total) => total.max(1).div_ceil(shards),
            None => usize::MAX,
        };
        let make_neighbor = || RwLock::new(LruShard::new(per_shard));
        let make_label = || RwLock::new(LruShard::new(per_shard));
        CachedOsn {
            backend,
            neighbor_shards: (0..shards).map(|_| make_neighbor()).collect(),
            label_shards: (0..shards).map(|_| make_label()).collect(),
            shard_mask: shards - 1,
            unbounded: cfg.capacity.is_none(),
            logical_neighbor: AtomicU64::new(0),
            logical_label: AtomicU64::new(0),
            neighbor_misses: AtomicU64::new(0),
            label_misses: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Opens a per-query session (its own logical-call counters and
    /// budget, shared cache underneath).
    pub fn session(&self) -> OsnSession<'_, B> {
        OsnSession {
            cache: self,
            neighbor_calls: Cell::new(0),
            label_calls: Cell::new(0),
            retry_charges: Cell::new(0),
            budget: Cell::new(None),
        }
    }

    /// Snapshot of the shared call accounting, aggregated over all
    /// sessions.
    pub fn stats(&self) -> CallStats {
        CallStats {
            logical_neighbor_calls: self.logical_neighbor.load(Ordering::Relaxed),
            logical_label_calls: self.logical_label.load(Ordering::Relaxed),
            neighbor_misses: self.neighbor_misses.load(Ordering::Relaxed),
            label_misses: self.label_misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the call accounting. Cached entries are kept — use
    /// [`CachedOsn::clear`] to drop them too.
    pub fn reset_stats(&self) {
        self.logical_neighbor.store(0, Ordering::Relaxed);
        self.logical_label.store(0, Ordering::Relaxed);
        self.neighbor_misses.store(0, Ordering::Relaxed);
        self.label_misses.store(0, Ordering::Relaxed);
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for s in self.neighbor_shards.iter() {
            s.write().unwrap().clear();
        }
        for s in self.label_shards.iter() {
            s.write().unwrap().clear();
        }
    }

    /// Cached entries currently held (neighbor lists, label sets).
    pub fn cached_entries(&self) -> (usize, usize) {
        let n = self
            .neighbor_shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .sum();
        let l = self
            .label_shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .sum();
        (n, l)
    }

    /// Fibonacci-hash shard index, so clustered node ids spread evenly.
    #[inline]
    fn shard_of(&self, u: NodeId) -> usize {
        (u.0 as usize).wrapping_mul(0x9E37_79B9) >> 7 & self.shard_mask
    }

    /// Cache-through neighbor fetch. Returns the data plus the *extra*
    /// billable attempts beyond the logical call itself (`attempts − 1` of
    /// the backend fetch on a miss, `0` on a hit) — how an adversarial
    /// backend's retries and pagination reach the calling session's
    /// budget.
    ///
    /// Unbounded shards never evict, so hits take the shard's **read**
    /// lock (concurrent hits don't serialize — the parallel-replication
    /// hot path). Bounded shards need the write lock even on hits to
    /// refresh LRU recency. Misses fetch from the backend under the write
    /// lock with a re-check, so concurrent first requests for one node
    /// produce exactly one miss — miss counts are
    /// interleaving-independent.
    fn neighbors_shared(&self, u: NodeId) -> (Arc<[NodeId]>, u64) {
        let lock = &self.neighbor_shards[self.shard_of(u)];
        if self.unbounded {
            if let Some(hit) = lock.read().unwrap().peek(u.0) {
                return (hit, 0);
            }
        }
        let mut shard = lock.write().unwrap();
        if let Some(hit) = shard.get(u.0) {
            return (hit, 0);
        }
        self.neighbor_misses.fetch_add(1, Ordering::Relaxed);
        let (fetched, attempts) = self.backend.fetch_neighbors_attempts(u);
        let value: Arc<[NodeId]> = Arc::from(&*fetched);
        shard.insert(u.0, Arc::clone(&value));
        (value, attempts.saturating_sub(1))
    }

    /// Cache-through label fetch (same locking discipline and extra-charge
    /// contract as [`CachedOsn::neighbors_shared`]).
    fn labels_shared(&self, u: NodeId) -> (Arc<[LabelId]>, u64) {
        let lock = &self.label_shards[self.shard_of(u)];
        if self.unbounded {
            if let Some(hit) = lock.read().unwrap().peek(u.0) {
                return (hit, 0);
            }
        }
        let mut shard = lock.write().unwrap();
        if let Some(hit) = shard.get(u.0) {
            return (hit, 0);
        }
        self.label_misses.fetch_add(1, Ordering::Relaxed);
        let (fetched, attempts) = self.backend.fetch_labels_attempts(u);
        let value: Arc<[LabelId]> = Arc::from(&*fetched);
        shard.insert(u.0, Arc::clone(&value));
        (value, attempts.saturating_sub(1))
    }
}

/// One query's view of a [`CachedOsn`]: implements [`OsnApi`] with
/// per-session logical-call accounting and an optional per-session hard
/// budget (mirroring [`crate::SimulatedOsn`]'s budget semantics, so
/// estimators behave identically against either).
///
/// Sessions are intentionally not `Sync` (plain `Cell` counters) — create
/// one per thread/replicate; the shared cache behind them is.
pub struct OsnSession<'c, B> {
    cache: &'c CachedOsn<B>,
    neighbor_calls: Cell<u64>,
    label_calls: Cell<u64>,
    retry_charges: Cell<u64>,
    budget: Cell<Option<u64>>,
}

impl<'c, B: OsnBackend> OsnSession<'c, B> {
    /// The cache this session runs against.
    pub fn cache(&self) -> &'c CachedOsn<B> {
        self.cache
    }

    /// Sets a hard budget on *charged neighbor-list calls* (logical calls
    /// plus retry charges; the same contract as `SimulatedOsn::set_budget`
    /// against a well-behaved backend, where the two coincide).
    pub fn set_budget(&self, calls: u64) {
        self.budget.set(Some(calls));
    }

    /// Removes the budget.
    pub fn clear_budget(&self) {
        self.budget.set(None);
    }

    /// Remaining charged neighbor-list calls under the budget, if one is
    /// set.
    pub fn budget_remaining(&self) -> Option<u64> {
        self.budget
            .get()
            .map(|b| b.saturating_sub(self.charged_neighbor_calls()))
    }

    /// Extra billable attempts this session's misses cost beyond their
    /// logical calls (0 against a well-behaved backend).
    pub fn retry_charges(&self) -> u64 {
        self.retry_charges.get()
    }

    /// Total charged API calls of both kinds: logical calls plus retry
    /// charges — the realized cost a billed crawler pays.
    pub fn charged_calls(&self) -> u64 {
        self.neighbor_calls.get() + self.label_calls.get() + self.retry_charges.get()
    }

    /// Logical neighbor-list calls plus retry charges — what the budget is
    /// checked against. (Charges are not split per endpoint; they all
    /// weigh on the neighbor-call budget, the currency the paper's
    /// stopping rules are quoted in.)
    fn charged_neighbor_calls(&self) -> u64 {
        self.neighbor_calls.get() + self.retry_charges.get()
    }
}

impl<B: OsnBackend> OsnApi for OsnSession<'_, B> {
    fn num_nodes(&self) -> usize {
        self.cache.backend.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.cache.backend.num_edges()
    }

    fn neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId> {
        self.neighbor_calls.set(self.neighbor_calls.get() + 1);
        let (value, extra) = self.cache.neighbors_shared(u);
        if extra > 0 {
            self.retry_charges.set(self.retry_charges.get() + extra);
        }
        SliceRef::Shared(value)
    }

    fn labels(&self, u: NodeId) -> SliceRef<'_, LabelId> {
        self.label_calls.set(self.label_calls.get() + 1);
        let (value, extra) = self.cache.labels_shared(u);
        if extra > 0 {
            self.retry_charges.set(self.retry_charges.get() + extra);
        }
        SliceRef::Shared(value)
    }

    fn max_degree_bound(&self) -> usize {
        self.cache.backend.max_degree_bound()
    }

    fn api_calls(&self) -> u64 {
        self.neighbor_calls.get() + self.label_calls.get()
    }

    fn budget_exhausted(&self) -> bool {
        match self.budget.get() {
            Some(b) => self.charged_neighbor_calls() >= b,
            None => false,
        }
    }
}

/// Logical-call totals flush into the shared [`CallStats`] when the
/// session ends — one pair of atomic adds per query instead of one per
/// call, so parallel replicates never contend on a shared counter cache
/// line. ([`CachedOsn::stats`] therefore aggregates *finished* sessions;
/// a live session's calls are visible through its own
/// [`OsnApi::api_calls`].)
impl<B> Drop for OsnSession<'_, B> {
    fn drop(&mut self) {
        let n = self.neighbor_calls.get();
        if n > 0 {
            self.cache.logical_neighbor.fetch_add(n, Ordering::Relaxed);
        }
        let l = self.label_calls.get();
        if l > 0 {
            self.cache.logical_label.fetch_add(l, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedOsn;
    use labelcount_graph::GraphBuilder;

    fn path4() -> LabeledGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        b.set_labels(NodeId(0), &[LabelId(1)]);
        b.build()
    }

    fn assert_sync<T: Sync>(_: &T) {}

    #[test]
    fn cached_graph_backend_is_sync() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        assert_sync(&cache);
    }

    #[test]
    fn hits_and_misses_are_separated() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        let s = cache.session();
        assert_eq!(s.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(s.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        s.labels(NodeId(0));
        s.labels(NodeId(0));
        s.labels(NodeId(1));
        drop(s); // logical totals flush at session end
        let st = cache.stats();
        assert_eq!(st.logical_neighbor_calls, 2);
        assert_eq!(st.neighbor_misses, 1);
        assert_eq!(st.logical_label_calls, 3);
        assert_eq!(st.label_misses, 2);
        assert_eq!(st.logical_calls(), 5);
        assert_eq!(st.misses(), 3);
        assert_eq!(st.hits(), 2);
        assert!((st.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn sessions_account_independently_but_share_the_cache() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        let a = cache.session();
        let b = cache.session();
        a.neighbors(NodeId(0));
        b.neighbors(NodeId(0)); // hit: a already pulled it in
        assert_eq!(a.api_calls(), 1);
        assert_eq!(b.api_calls(), 1);
        drop(a);
        drop(b);
        let st = cache.stats();
        assert_eq!(st.logical_neighbor_calls, 2);
        assert_eq!(st.neighbor_misses, 1);
    }

    #[test]
    fn unbounded_misses_equal_distinct_requests() {
        let g = path4();
        let cache = CachedOsn::new(SimulatedOsn::new(&g));
        let s = cache.session();
        for _ in 0..5 {
            for u in 0..4u32 {
                s.neighbors(NodeId(u));
                s.labels(NodeId(u));
            }
        }
        drop(s);
        let st = cache.stats();
        assert_eq!(st.neighbor_misses, 4);
        assert_eq!(st.label_misses, 4);
        // The wrapped simulation saw exactly the miss traffic.
        let inner = cache.backend().stats();
        assert_eq!(inner.neighbor_calls, st.neighbor_misses);
        assert_eq!(inner.label_calls, st.label_misses);
        assert_eq!(inner.distinct_neighbor_calls, 4);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let g = path4();
        // capacity 2, one shard: deterministic eviction order.
        let cache = CachedOsn::with_config(
            GraphOsn::new(&g),
            CacheConfig {
                capacity: Some(2),
                shards: 1,
            },
        );
        let s = cache.session();
        s.neighbors(NodeId(0)); // miss {0}
        s.neighbors(NodeId(1)); // miss {0,1}
        s.neighbors(NodeId(0)); // hit, refreshes 0 -> LRU is 1
        s.neighbors(NodeId(2)); // miss, evicts 1 -> {0,2}
        s.neighbors(NodeId(0)); // hit
        s.neighbors(NodeId(1)); // miss again (was evicted)
        drop(s);
        let st = cache.stats();
        assert_eq!(st.neighbor_misses, 4);
        assert_eq!(st.logical_neighbor_calls, 6);
        assert_eq!(cache.cached_entries().0, 2);
    }

    #[test]
    fn bounded_cache_still_returns_correct_data() {
        let g = path4();
        let cache = CachedOsn::with_config(
            GraphOsn::new(&g),
            CacheConfig {
                capacity: Some(1),
                shards: 1,
            },
        );
        let s = cache.session();
        for round in 0..3 {
            for u in 0..4u32 {
                let got = s.neighbors(NodeId(u));
                assert_eq!(&*got, g.neighbors(NodeId(u)), "round {round} node {u}");
            }
        }
    }

    #[test]
    fn session_budget_tracks_logical_neighbor_calls() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        let s = cache.session();
        s.set_budget(2);
        assert!(!s.budget_exhausted());
        assert_eq!(s.budget_remaining(), Some(2));
        s.neighbors(NodeId(0));
        s.neighbors(NodeId(0)); // a cache hit still costs a logical call
        assert!(s.budget_exhausted());
        assert_eq!(s.budget_remaining(), Some(0));
        s.clear_budget();
        assert!(!s.budget_exhausted());
    }

    #[test]
    fn reset_and_clear_are_independent() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        let s = cache.session();
        s.neighbors(NodeId(0));
        cache.reset_stats();
        assert_eq!(cache.stats(), CallStats::default());
        assert_eq!(cache.cached_entries().0, 1); // entry survives reset
        let s2 = cache.session();
        s2.neighbors(NodeId(0));
        assert_eq!(cache.stats().neighbor_misses, 0); // still cached

        cache.clear();
        assert_eq!(cache.cached_entries(), (0, 0));
        let s3 = cache.session();
        s3.neighbors(NodeId(0));
        assert_eq!(cache.stats().neighbor_misses, 1); // refetched
    }

    #[test]
    fn parallel_sessions_produce_deterministic_totals() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let s = cache.session();
                    for _ in 0..50 {
                        for u in 0..4u32 {
                            s.neighbors(NodeId(u));
                            s.labels(NodeId(u));
                        }
                    }
                    assert_eq!(s.api_calls(), 400);
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.logical_neighbor_calls, 800);
        assert_eq!(st.logical_label_calls, 800);
        // Fetch-under-lock: distinct requests == misses, regardless of
        // interleaving.
        assert_eq!(st.neighbor_misses, 4);
        assert_eq!(st.label_misses, 4);
    }

    #[test]
    fn guard_survives_eviction_of_its_entry() {
        let g = path4();
        let cache = CachedOsn::with_config(
            GraphOsn::new(&g),
            CacheConfig {
                capacity: Some(1),
                shards: 1,
            },
        );
        let s = cache.session();
        let guard = s.neighbors(NodeId(1));
        s.neighbors(NodeId(2)); // evicts node 1's entry
        assert_eq!(guard, &[NodeId(0), NodeId(2)]); // still readable
    }

    #[test]
    fn max_degree_bound_forwards_to_backend() {
        let g = path4();
        let cache = CachedOsn::new(GraphOsn::new(&g));
        assert_eq!(cache.session().max_degree_bound(), 2);
        assert_eq!(cache.stats().logical_calls(), 0); // prior knowledge is free
    }
}
