//! A dynamic (churning) OSN backend: [`ChurnOsn`].
//!
//! Every other backend in the crate serves a frozen graph — the paper's
//! standing assumption. [`ChurnOsn`] drops that assumption: it owns a
//! [`MutableGraph`] plus a seeded [`ChurnSchedule`] and mutates the served
//! graph whenever its virtual clock is advanced ([`ChurnOsn::advance_to`]),
//! bumping per-region [`Epoch`] stamps as it goes. Downstream caches
//! ([`crate::CachedOsn`] L2 entries, [`crate::OsnSession`] L1 slots) store
//! the epoch they were filled at and treat a changed stamp as a miss, so
//! invalidation rides the existing read path — no callbacks, no
//! subscription machinery, just generation stamps (the same protocol
//! hardware caches and MVCC storage engines use).
//!
//! # Determinism
//!
//! Churn advances on **virtual ticks only** — `advance_to` is the one
//! mutation entry point, and callers invoke it at serial control points
//! (between scheduler slices, between experiment phases). Between two
//! `advance_to` calls the backend is effectively immutable, so concurrent
//! readers at any thread count observe one well-defined snapshot and every
//! derived number is bit-identical across thread/shard/worker counts. With
//! `events_per_batch == 0` (churn rate 0) the schedule never fires and the
//! backend behaves exactly like a static [`crate::GraphOsn`] over the seed
//! graph.
//!
//! # Stale-read mode
//!
//! [`ChurnOsn::set_report_epochs`]`(false)` keeps the churn but hides the
//! stamps: `epoch_of` answers [`Epoch::STATIC`] forever, so caches keep
//! serving filled entries however stale they get. That is the *control
//! arm* of the `staleness` experiment — the measured gap between the
//! invalidating and stale-read runs is exactly what epoch invalidation
//! buys.

use std::sync::{PoisonError, RwLock};

use labelcount_graph::{
    ChurnConfig, ChurnSchedule, ChurnStats, Epoch, LabelId, LabeledGraph, MutableGraph, NodeId,
};

use crate::api::OsnBackend;
use crate::guard::SliceRef;

/// The mutable state: one lock covers graph, schedule, and counters so a
/// batch application is atomic with respect to readers.
struct Inner {
    graph: MutableGraph,
    schedule: ChurnSchedule,
    stats: ChurnStats,
}

/// An [`OsnBackend`] over a churning graph (see the [module docs](self)).
///
/// `Sync`: readers take the inner `RwLock` in read mode and clone the
/// per-node `Arc` lists out, so fetches from many threads proceed in
/// parallel; only [`ChurnOsn::advance_to`] takes the write lock.
pub struct ChurnOsn {
    inner: RwLock<Inner>,
    report_epochs: bool,
}

impl ChurnOsn {
    /// Wraps a snapshot of `graph` with the churn stream described by
    /// `cfg` (the graph itself is copied into a [`MutableGraph`]; the
    /// original is not touched).
    pub fn new(graph: &LabeledGraph, cfg: ChurnConfig) -> ChurnOsn {
        ChurnOsn {
            inner: RwLock::new(Inner {
                graph: MutableGraph::new(graph, cfg.region_shift),
                schedule: ChurnSchedule::new(cfg),
                stats: ChurnStats::default(),
            }),
            report_epochs: true,
        }
    }

    /// Toggles epoch reporting. `true` (the default) reports live region
    /// stamps, so epoch-aware caches invalidate; `false` pins
    /// [`OsnBackend::epoch_of`] at [`Epoch::STATIC`], so caches serve
    /// stale entries forever — the control arm of the staleness
    /// experiment.
    #[must_use = "returns the modified backend"]
    pub fn set_report_epochs(mut self, report: bool) -> ChurnOsn {
        self.report_epochs = report;
        self
    }

    /// Whether live epochs are reported (see
    /// [`ChurnOsn::set_report_epochs`]).
    pub fn reports_epochs(&self) -> bool {
        self.report_epochs
    }

    /// Applies every churn batch due at or before virtual `tick`. Call at
    /// serial control points only (between scheduler slices, between
    /// experiment phases); ticks are the scheduler's virtual time, never
    /// wall time, which is what keeps churned runs bit-identical across
    /// thread counts.
    pub fn advance_to(&self, tick: u64) {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let Inner {
            graph,
            schedule,
            stats,
        } = &mut *inner;
        schedule.advance_to(graph, tick, stats);
    }

    /// The next virtual tick at which a batch is due, or `None` when the
    /// stream is empty (churn rate 0).
    pub fn next_due_tick(&self) -> Option<u64> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .schedule
            .next_due_tick()
    }

    /// Snapshot of the churn accounting so far.
    pub fn churn_stats(&self) -> ChurnStats {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// The churn configuration in force.
    pub fn churn_config(&self) -> ChurnConfig {
        *self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .schedule
            .config()
    }

    /// Neighbor-list invalidations the per-endpoint epoch split avoided
    /// so far (one per applied label flip — see
    /// [`MutableGraph::avoided_neighbor_invalidations`]).
    pub fn avoided_neighbor_invalidations(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .avoided_neighbor_invalidations()
    }

    /// Materializes the current snapshot as an immutable
    /// [`LabeledGraph`] — evaluation-side only, for computing *fresh*
    /// ground truth against the churned graph. Estimators must not use
    /// this.
    pub fn ground_truth_snapshot(&self) -> LabeledGraph {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .to_labeled_graph()
    }
}

impl OsnBackend for ChurnOsn {
    fn num_nodes(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .num_nodes()
    }

    fn num_edges(&self) -> usize {
        // Prior knowledge tracks the live graph: the OSN owner republishes
        // |E| as it drifts.
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .num_edges()
    }

    fn max_degree_bound(&self) -> usize {
        // Monotone: raised by inserts, never lowered, so a bound handed to
        // a running estimator stays valid across batches.
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .max_degree_bound()
    }

    fn fetch_neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId> {
        SliceRef::Shared(
            self.inner
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .graph
                .neighbors(u)
                .clone(),
        )
    }

    fn fetch_labels(&self, u: NodeId) -> SliceRef<'_, LabelId> {
        SliceRef::Shared(
            self.inner
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .graph
                .labels(u)
                .clone(),
        )
    }

    fn epoch_of(&self, u: NodeId) -> Epoch {
        if !self.report_epochs {
            return Epoch::STATIC;
        }
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .epoch_of(u)
    }

    fn label_epoch_of(&self, u: NodeId) -> Epoch {
        if !self.report_epochs {
            return Epoch::STATIC;
        }
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .label_epoch_of(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cached::{CachedOsn, GraphOsn};
    use crate::OsnApi;
    use labelcount_graph::{ChurnEvent, GraphBuilder};

    fn ring(n: u32) -> LabeledGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        for i in 0..n {
            b.set_labels(NodeId(i), &[LabelId(1 + (i % 2))]);
        }
        b.build()
    }

    fn cfg(seed: u64, events: usize, interval: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            events_per_batch: events,
            batch_interval_ticks: interval,
            region_shift: 0,
        }
    }

    fn assert_sync<T: Sync>(_: &T) {}

    #[test]
    fn churn_osn_is_sync() {
        let g = ring(8);
        let osn = ChurnOsn::new(&g, cfg(1, 2, 10));
        assert_sync(&osn);
    }

    #[test]
    fn zero_rate_matches_static_backend() {
        let g = ring(16);
        let churn = ChurnOsn::new(&g, cfg(1, 0, 10));
        let staticb = GraphOsn::new(&g);
        churn.advance_to(1_000_000);
        assert_eq!(churn.num_edges(), staticb.num_edges());
        assert_eq!(churn.next_due_tick(), None);
        for u in (0..16u32).map(NodeId) {
            assert_eq!(&*churn.fetch_neighbors(u), &*staticb.fetch_neighbors(u));
            assert_eq!(&*churn.fetch_labels(u), &*staticb.fetch_labels(u));
            assert_eq!(churn.epoch_of(u), Epoch::STATIC);
        }
        assert_eq!(churn.churn_stats().events_drawn, 0);
    }

    #[test]
    fn advance_is_idempotent_and_monotone() {
        let g = ring(16);
        let osn = ChurnOsn::new(&g, cfg(7, 3, 5));
        osn.advance_to(20); // batches at 5, 10, 15, 20
        let s1 = osn.churn_stats();
        assert_eq!(s1.batches, 4);
        osn.advance_to(20); // nothing new due
        osn.advance_to(12); // going "back" is a no-op, not a rewind
        assert_eq!(osn.churn_stats(), s1);
        osn.advance_to(25);
        assert_eq!(osn.churn_stats().batches, 5);
    }

    #[test]
    fn epochs_drive_cache_invalidation_end_to_end() {
        let g = ring(32);
        let osn = ChurnOsn::new(&g, cfg(11, 20, 10));
        let cache = CachedOsn::new(osn);
        let s = cache.session();
        // Warm every node at epoch 0.
        for u in (0..32u32).map(NodeId) {
            s.neighbors(u);
            s.labels(u);
        }
        drop(s);
        assert_eq!(cache.stats().misses(), 64);

        cache.backend().advance_to(10); // one batch of 20 events
        let st = cache.backend().churn_stats();
        assert!(st.events_applied() > 0, "20 draws on a ring must land some");

        let s = cache.session();
        for u in (0..32u32).map(NodeId) {
            s.neighbors(u);
            s.labels(u);
        }
        drop(s);
        let cs = cache.stats();
        // Every touched region was refetched (L2 stale evictions); the
        // rest were honest hits.
        assert!(cs.l2_stale_evictions > 0, "churn must invalidate something");
        assert_eq!(
            cs.misses(),
            64 + cs.l2_stale_evictions,
            "refetches must equal stale discoveries exactly"
        );
    }

    #[test]
    fn label_flips_leave_cached_neighbor_lists_alone() {
        let g = ring(8);
        // A schedule that never fires: we drive flips by hand through the
        // backend's own clock-free surface to isolate the epoch split.
        let osn = ChurnOsn::new(&g, cfg(1, 0, 10));
        let cache = CachedOsn::new(osn);
        let s = cache.session();
        for u in (0..8u32).map(NodeId) {
            s.neighbors(u);
            s.labels(u);
        }
        drop(s);
        assert_eq!(cache.stats().misses(), 16);

        // Flip a label on every node — under the old shared epoch this
        // invalidated every cached neighbor list too.
        {
            let mut inner = cache.backend().inner.write().unwrap();
            for u in (0..8u32).map(NodeId) {
                assert!(inner.graph.apply(ChurnEvent::FlipLabel(u, LabelId(1))));
            }
        }
        assert_eq!(cache.backend().avoided_neighbor_invalidations(), 8);

        let s = cache.session();
        for u in (0..8u32).map(NodeId) {
            s.neighbors(u); // all honest hits: edge epochs untouched
            s.labels(u); // all stale: label epochs bumped
        }
        drop(s);
        let cs = cache.stats();
        assert_eq!(cs.l2_stale_evictions, 8, "only label entries invalidate");
        assert_eq!(cs.misses(), 16 + 8);
    }

    #[test]
    fn stale_read_mode_hides_churn_from_caches() {
        let g = ring(32);
        let osn = ChurnOsn::new(&g, cfg(11, 20, 10)).set_report_epochs(false);
        assert!(!osn.reports_epochs());
        let cache = CachedOsn::new(osn);
        let s = cache.session();
        for u in (0..32u32).map(NodeId) {
            s.neighbors(u);
        }
        drop(s);
        cache.backend().advance_to(10);
        assert!(cache.backend().churn_stats().events_applied() > 0);
        let s = cache.session();
        for u in (0..32u32).map(NodeId) {
            s.neighbors(u); // stale L2 hits: the control arm
        }
        drop(s);
        let cs = cache.stats();
        assert_eq!(cs.misses(), 32, "no refetches in stale-read mode");
        assert_eq!(cs.stale_evictions(), 0);
    }

    #[test]
    fn deterministic_across_reader_thread_counts() {
        let g = ring(64);
        let run = |threads: usize| -> (Vec<Vec<NodeId>>, ChurnStats) {
            let osn = ChurnOsn::new(&g, cfg(3, 10, 5));
            osn.advance_to(25); // 5 batches at a serial control point
            let cache = CachedOsn::new(&osn);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let s = cache.session();
                        for u in (0..64u32).map(NodeId) {
                            s.neighbors(u);
                        }
                    });
                }
            });
            let snapshot = (0..64u32)
                .map(|u| osn.fetch_neighbors(NodeId(u)).to_vec())
                .collect();
            (snapshot, osn.churn_stats())
        };
        let (g1, s1) = run(1);
        let (g8, s8) = run(8);
        assert_eq!(g1, g8, "churned data must not depend on reader threads");
        assert_eq!(s1, s8);
    }

    #[test]
    fn ground_truth_snapshot_tracks_the_live_graph() {
        let g = ring(16);
        let osn = ChurnOsn::new(&g, cfg(9, 8, 10));
        let before = osn.ground_truth_snapshot();
        assert_eq!(before.num_edges(), g.num_edges());
        osn.advance_to(50);
        let after = osn.ground_truth_snapshot();
        assert_eq!(after.num_edges(), osn.num_edges());
        let st = osn.churn_stats();
        assert_eq!(
            after.num_edges() as i64 - g.num_edges() as i64,
            st.edges_inserted as i64 - st.edges_deleted as i64
        );
    }
}
