//! Implicit line graph `G'` for the baseline adaptations (paper §5.1).
//!
//! `G' = (H, R)` where each node of `H` is an edge of `G` and two nodes of
//! `H` are adjacent iff the corresponding edges of `G` share an endpoint.
//! Counting target *edges* in `G` equals counting target *nodes* in `G'`,
//! which lets the node-counting estimators of Li et al. (ICDE 2015) run
//! unchanged.
//!
//! `G'` is never materialized — it can be quadratically larger than `G`
//! (`|R| = Σ_u d(u)·(d(u)−1)/2`) and the whole point of the setting is
//! restricted access. [`LineGraphView`] translates every `G'` operation
//! into `OsnApi` calls on `G`:
//!
//! * `d'(u,v) = d(u) + d(v) − 2` (edges adjacent to `(u,v)`),
//! * a uniform `G'`-neighbor of `(u,v)` is drawn by indexing into the
//!   concatenation of `N(u)\{v}` and `N(v)\{u}`.

use labelcount_graph::{NodeId, TargetLabel};
use rand::Rng;

use crate::api::{OsnApi, OsnApiExt};

/// A node of the line graph `G'`: an undirected edge of `G`, stored
/// normalized (`u() <= v()`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LineNode {
    u: NodeId,
    v: NodeId,
}

impl LineNode {
    /// Creates a line-graph node for the edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if `u == v` (the underlying graph has no self-loops).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "line-graph nodes are edges; self-loops do not exist");
        if u < v {
            LineNode { u, v }
        } else {
            LineNode { u: v, v: u }
        }
    }

    /// The smaller endpoint.
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// The larger endpoint.
    pub fn v(&self) -> NodeId {
        self.v
    }
}

impl std::fmt::Display for LineNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// The implicit line graph `G'` over an [`OsnApi`].
pub struct LineGraphView<'a, A: OsnApi + ?Sized> {
    api: &'a A,
}

impl<'a, A: OsnApi + ?Sized> LineGraphView<'a, A> {
    /// Wraps an OSN API handle.
    pub fn new(api: &'a A) -> Self {
        LineGraphView { api }
    }

    /// The underlying API handle.
    pub fn api(&self) -> &'a A {
        self.api
    }

    /// `|H|`: the number of nodes of `G'`, which equals `|E|` of `G` —
    /// prior knowledge, no API calls.
    pub fn num_nodes(&self) -> usize {
        self.api.num_edges()
    }

    /// Degree of a line node: `d(u) + d(v) − 2`. Two neighbor-list calls.
    pub fn degree(&self, e: LineNode) -> usize {
        self.api.degree(e.u) + self.api.degree(e.v) - 2
    }

    /// Samples a uniformly random `G'`-neighbor of `e`, or `None` if `e` is
    /// an isolated edge of `G` (both endpoints degree 1).
    ///
    /// The draw is exact (no rejection) and O(1) past the neighbor-list
    /// fetches: an index into the multiset `N(u)\{v} ⊎ N(v)\{u}` is split by
    /// the precomputed endpoint degrees, and the excluded endpoint is
    /// remapped with the swap-with-last trick (`N(w)\{x}` is sampled by
    /// drawing from the first `d(w)−1` slots and substituting the last slot
    /// whenever `x` itself comes up — each remaining neighbor keeps
    /// probability `1/(d(w)−1)`, no position scan or binary search needed).
    /// Exactly two neighbor-list calls, always (the previous implementation
    /// paid a third call whenever the draw landed on the `N(v)` side).
    pub fn sample_neighbor<R: Rng + ?Sized>(&self, e: LineNode, rng: &mut R) -> Option<LineNode> {
        let nu = self.api.neighbors(e.u);
        let nv = self.api.neighbors(e.v);
        debug_assert!(
            nu.binary_search(&e.v).is_ok() && nv.binary_search(&e.u).is_ok(),
            "line node {e} must be an edge of G with symmetric adjacency"
        );
        let total = nu.len() + nv.len() - 2;
        if total == 0 {
            return None;
        }
        let idx = rng.gen_range(0..total);
        Some(Self::nth_adjacent(&nu, &nv, e, idx))
    }

    /// The `i`-th `G'`-neighbor of `e` in the canonical enumeration of the
    /// multiset `N(u)\{v} ⊎ N(v)\{u}` (the order
    /// [`LineGraphView::sample_neighbor`] indexes into), or `None` when
    /// `i >= d'(e)`. Two neighbor-list calls, O(1) past the fetches — the
    /// building block of single-draw padded proposals, where one uniform
    /// index both decides laziness and selects the neighbor.
    pub fn neighbor_at(&self, e: LineNode, i: usize) -> Option<LineNode> {
        let nu = self.api.neighbors(e.u);
        let nv = self.api.neighbors(e.v);
        debug_assert!(
            nu.binary_search(&e.v).is_ok() && nv.binary_search(&e.u).is_ok(),
            "line node {e} must be an edge of G with symmetric adjacency"
        );
        if i >= nu.len() + nv.len() - 2 {
            return None;
        }
        Some(Self::nth_adjacent(&nu, &nv, e, i))
    }

    /// Maps index `idx < d'(e)` to an adjacent edge: the index splits by
    /// the precomputed endpoint degrees, and the excluded endpoint is
    /// remapped with the swap-with-last trick (each remaining neighbor
    /// keeps probability `1/(d(w)−1)` under a uniform index — no position
    /// scan or binary search).
    fn nth_adjacent(nu: &[NodeId], nv: &[NodeId], e: LineNode, idx: usize) -> LineNode {
        let (du, dv) = (nu.len(), nv.len());
        debug_assert!(idx < du + dv - 2);
        if idx < du - 1 {
            // Pick slot idx of N(u) \ {v}.
            let w = nu[idx];
            let w = if w == e.v { nu[du - 1] } else { w };
            LineNode::new(e.u, w)
        } else {
            // Pick slot idx − (d(u)−1) of N(v) \ {u}.
            let w = nv[idx - (du - 1)];
            let w = if w == e.u { nv[dv - 1] } else { w };
            LineNode::new(e.v, w)
        }
    }

    /// A starting line node for a walk: a random incident edge of a random
    /// user (retrying isolated users). Not uniform over `H` — walks burn in
    /// past the start anyway.
    ///
    /// # Panics
    /// Panics if no user with a friend is found after many retries (i.e.
    /// the OSN has no edges).
    pub fn random_start<R: Rng + ?Sized>(&self, rng: &mut R) -> LineNode {
        for _ in 0..10_000 {
            let u = self.api.random_node(rng);
            if let Some(v) = self.api.sample_neighbor(u, rng) {
                return LineNode::new(u, v);
            }
        }
        panic!("no edges reachable: cannot start a line-graph walk");
    }

    /// Whether the line node is a *target node* of `G'`, i.e. its edge is a
    /// target edge of `G`. Two profile calls.
    pub fn is_target(&self, e: LineNode, target: TargetLabel) -> bool {
        let (t1, t2) = (target.first(), target.second());
        (self.api.has_label(e.u, t1) && self.api.has_label(e.v, t2))
            || (self.api.has_label(e.v, t1) && self.api.has_label(e.u, t2))
    }

    /// Upper bound on the maximum degree of `G'`:
    /// `2 · max_degree(G) − 2` (two endpoints of maximal degree).
    pub fn max_degree_bound(&self) -> usize {
        (2 * self.api.max_degree_bound()).saturating_sub(2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedOsn;
    use labelcount_graph::{GraphBuilder, LabelId, LabeledGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Triangle 0-1-2 plus tail 2-3; labels 0:[1] 1:[2] 2:[1] 3:[2].
    fn fixture() -> LabeledGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(2), NodeId(3));
        b.set_labels(NodeId(0), &[LabelId(1)]);
        b.set_labels(NodeId(1), &[LabelId(2)]);
        b.set_labels(NodeId(2), &[LabelId(1)]);
        b.set_labels(NodeId(3), &[LabelId(2)]);
        b.build()
    }

    #[test]
    fn line_node_normalizes() {
        let a = LineNode::new(NodeId(3), NodeId(1));
        assert_eq!(a.u(), NodeId(1));
        assert_eq!(a.v(), NodeId(3));
        assert_eq!(a, LineNode::new(NodeId(1), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_line_node_rejected() {
        LineNode::new(NodeId(2), NodeId(2));
    }

    #[test]
    fn degree_identity() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        // d'(0,1) = d(0)+d(1)-2 = 2+2-2 = 2.
        assert_eq!(lg.degree(LineNode::new(NodeId(0), NodeId(1))), 2);
        // d'(2,3) = 3+1-2 = 2.
        assert_eq!(lg.degree(LineNode::new(NodeId(2), NodeId(3))), 2);
        assert_eq!(lg.num_nodes(), 4);
    }

    #[test]
    fn neighbor_sampling_is_uniform_over_adjacent_edges() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let e = LineNode::new(NodeId(1), NodeId(2));
        // Adjacent edges: (0,1) via u=1; (0,2),(2,3) via v=2.
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts: HashMap<LineNode, usize> = HashMap::new();
        let trials = 30_000;
        for _ in 0..trials {
            let n = lg.sample_neighbor(e, &mut rng).unwrap();
            *counts.entry(n).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (&n, &c) in &counts {
            let frac = c as f64 / trials as f64;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.02,
                "neighbor {n} frequency {frac}"
            );
            assert_ne!(n, e);
        }
    }

    #[test]
    fn neighbor_at_enumerates_each_adjacent_edge_once() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        for (u, v) in g.edges() {
            let e = LineNode::new(u, v);
            let d = lg.degree(e);
            let mut seen: Vec<LineNode> = (0..d).map(|i| lg.neighbor_at(e, i).unwrap()).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), d, "{e}: enumeration must be a bijection");
            for n in &seen {
                assert_ne!(*n, e);
                assert!(g.has_edge(n.u(), n.v()), "{n} is not an edge");
                assert!(
                    n.u() == e.u() || n.u() == e.v() || n.v() == e.u() || n.v() == e.v(),
                    "{n} does not share an endpoint with {e}"
                );
            }
            assert_eq!(lg.neighbor_at(e, d), None, "{e}: out of range must be None");
        }
    }

    #[test]
    fn isolated_edge_has_no_neighbors() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            lg.sample_neighbor(LineNode::new(NodeId(0), NodeId(1)), &mut rng),
            None
        );
    }

    #[test]
    fn is_target_matches_ground_truth() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let target = TargetLabel::new(LabelId(1), LabelId(2));
        // Target edges: (0,1) [1-2], (1,2) [2-1], (2,3) [1-2]; not (0,2) [1-1].
        assert!(lg.is_target(LineNode::new(NodeId(0), NodeId(1)), target));
        assert!(lg.is_target(LineNode::new(NodeId(1), NodeId(2)), target));
        assert!(lg.is_target(LineNode::new(NodeId(2), NodeId(3)), target));
        assert!(!lg.is_target(LineNode::new(NodeId(0), NodeId(2)), target));
    }

    #[test]
    fn random_start_returns_real_edge() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let e = lg.random_start(&mut rng);
            assert!(g.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn max_degree_bound_valid() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let bound = lg.max_degree_bound();
        // Check against every edge's true line degree.
        for (u, v) in g.edges() {
            assert!(lg.degree(LineNode::new(u, v)) <= bound);
        }
    }

    #[test]
    fn api_calls_are_accounted() {
        let g = fixture();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let before = osn.stats().neighbor_calls;
        lg.degree(LineNode::new(NodeId(0), NodeId(1)));
        assert_eq!(osn.stats().neighbor_calls, before + 2);
    }
}
