//! The restricted OSN access trait.

use labelcount_graph::{LabelId, NodeId};
use rand::Rng;

/// Access to an online social network restricted to what real OSN APIs
/// provide (paper §3):
///
/// * retrieve the friend list of a known user ([`OsnApi::neighbors`]);
/// * read a known user's profile labels ([`OsnApi::labels`]);
/// * prior knowledge of `|V|` and `|E|` ([`OsnApi::num_nodes`],
///   [`OsnApi::num_edges`]) — the paper assumes these are published by the
///   OSN owner or estimated with existing methods;
/// * draw a uniformly random user id ([`OsnApi::random_node`]) — used only
///   to seed random walks (real crawlers use an arbitrary seed user; the
///   burn-in makes the choice irrelevant).
///
/// Deliberately absent: edge enumeration, node iteration, global label
/// statistics. Estimators that only hold an `impl OsnApi` are statically
/// prevented from cheating.
pub trait OsnApi {
    /// Prior knowledge: the number of users `|V|`.
    fn num_nodes(&self) -> usize;

    /// Prior knowledge: the number of friendships `|E|`.
    fn num_edges(&self) -> usize;

    /// The friend list of `u` (sorted by node id). Each invocation models
    /// one neighbor-list API call.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// The profile labels of `u` (sorted). Each invocation models one
    /// profile API call.
    fn labels(&self, u: NodeId) -> &[LabelId];

    /// Degree of `u`, via its friend list.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Whether `u` carries label `t`, via the profile.
    #[inline]
    fn has_label(&self, u: NodeId, t: LabelId) -> bool {
        self.labels(u).binary_search(&t).is_ok()
    }

    /// An upper bound on the maximum degree, required by the
    /// maximum-degree random-walk baselines. Defaults to `|V| − 1` (always
    /// valid); [`crate::SimulatedOsn`] overrides it with the true maximum,
    /// matching the baselines' assumption that the bound is known.
    fn max_degree_bound(&self) -> usize {
        self.num_nodes().saturating_sub(1)
    }

    /// Draws a uniformly random user id to seed a walk.
    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId
    where
        Self: Sized,
    {
        assert!(self.num_nodes() > 0, "cannot sample from an empty OSN");
        NodeId(rng.gen_range(0..self.num_nodes() as u32))
    }

    /// Samples a uniformly random friend of `u`, or `None` if `u` has no
    /// friends. One neighbor-list call.
    fn sample_neighbor<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId>
    where
        Self: Sized,
    {
        let ns = self.neighbors(u);
        if ns.is_empty() {
            None
        } else {
            Some(ns[rng.gen_range(0..ns.len())])
        }
    }
}
