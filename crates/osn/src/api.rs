//! The restricted OSN access traits.

use labelcount_graph::{Epoch, LabelId, NodeId};
use rand::Rng;

use crate::guard::SliceRef;

/// Access to an online social network restricted to what real OSN APIs
/// provide (paper §3):
///
/// * retrieve the friend list of a known user ([`OsnApi::neighbors`]);
/// * read a known user's profile labels ([`OsnApi::labels`]);
/// * prior knowledge of `|V|` and `|E|` ([`OsnApi::num_nodes`],
///   [`OsnApi::num_edges`]) — the paper assumes these are published by the
///   OSN owner or estimated with existing methods.
///
/// Deliberately absent: edge enumeration, node iteration, global label
/// statistics. Estimators that only hold an `OsnApi` handle are statically
/// prevented from cheating.
///
/// The trait is **object-safe**: every estimator entry point takes
/// `&dyn OsnApi`, so the same compiled code runs against the direct
/// [`crate::SimulatedOsn`], a thread-safe [`crate::OsnSession`] over a
/// [`crate::CachedOsn`], or any future backend. Generic conveniences that
/// need a sized `Rng` ([`OsnApiExt::random_node`],
/// [`OsnApiExt::sample_neighbor`]) live on the blanket extension trait
/// [`OsnApiExt`].
///
/// `neighbors`/`labels` return [`SliceRef`] guards rather than plain
/// borrows so a caching implementation can hand out shared cache entries
/// without leaking or copying; direct backends return
/// [`SliceRef::Borrowed`] and pay nothing.
pub trait OsnApi {
    /// Prior knowledge: the number of users `|V|`.
    fn num_nodes(&self) -> usize;

    /// Prior knowledge: the number of friendships `|E|`.
    fn num_edges(&self) -> usize;

    /// The friend list of `u` (sorted by node id). Each invocation models
    /// one neighbor-list API call.
    fn neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId>;

    /// The profile labels of `u` (sorted). Each invocation models one
    /// profile API call.
    fn labels(&self, u: NodeId) -> SliceRef<'_, LabelId>;

    /// Degree of `u`, via its friend list.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Whether `u` carries label `t`, via the profile.
    #[inline]
    fn has_label(&self, u: NodeId, t: LabelId) -> bool {
        self.labels(u).binary_search(&t).is_ok()
    }

    /// An upper bound on the maximum degree, required by the
    /// maximum-degree random-walk baselines. Defaults to `|V| − 1` (always
    /// valid); [`crate::SimulatedOsn`] overrides it with the true maximum,
    /// matching the baselines' assumption that the bound is known.
    fn max_degree_bound(&self) -> usize {
        self.num_nodes().saturating_sub(1)
    }

    /// *Logical* API calls issued through this handle so far
    /// (neighbor-list + profile). This is the currency of the paper's
    /// evaluation: sample-size budgets are quoted as API calls (a share of
    /// `|V|`), and every estimator pays per logical call — whether or not
    /// a cache absorbed the backend fetch. Budget-driven stopping rules
    /// therefore behave identically with and without a cache.
    fn api_calls(&self) -> u64;

    /// Whether a hard budget on neighbor-list calls (if any) has been
    /// exhausted. Handles without budget support always answer `false`.
    fn budget_exhausted(&self) -> bool {
        false
    }
}

/// Generic conveniences over any [`OsnApi`] (sized or `dyn`): random seed
/// users and uniform friend draws, the only places estimators need an RNG
/// against the API itself.
pub trait OsnApiExt: OsnApi {
    /// Draws a uniformly random user id to seed a walk — used only to seed
    /// random walks (real crawlers use an arbitrary seed user; the burn-in
    /// makes the choice irrelevant). Free of API-call cost.
    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        assert!(self.num_nodes() > 0, "cannot sample from an empty OSN");
        NodeId(rng.gen_range(0..self.num_nodes() as u32))
    }

    /// Samples a uniformly random friend of `u`, or `None` if `u` has no
    /// friends. One neighbor-list call.
    fn sample_neighbor<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        let ns = self.neighbors(u);
        if ns.is_empty() {
            None
        } else {
            Some(ns[rng.gen_range(0..ns.len())])
        }
    }
}

impl<A: OsnApi + ?Sized> OsnApiExt for A {}

/// The realized cost of one backend fetch: how many billable API attempts
/// it took and how many simulated latency ticks it spent (attempt
/// latencies plus backoff and retry-after waits).
///
/// Well-behaved backends answer in one attempt and zero ticks; adversarial
/// backends ([`crate::AdversarialOsn`]) report the pages, retries, and
/// waits their fault model forced. Surfacing the cost **per fetch** — not
/// just in aggregate counters — is what lets a virtual-time scheduler
/// advance its clock by exactly the ticks each fetch billed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchCost {
    /// Billable API attempts (`>= 1` for a fetch that happened).
    pub attempts: u64,
    /// Simulated latency ticks the fetch spent.
    pub ticks: u64,
}

impl FetchCost {
    /// The cost of a clean, unpaginated fetch: one attempt, zero ticks.
    pub fn clean() -> FetchCost {
        FetchCost {
            attempts: 1,
            ticks: 0,
        }
    }

    /// Attempts beyond the first — what a budgeted caller is charged on
    /// top of the logical call itself.
    pub fn extra_attempts(&self) -> u64 {
        self.attempts.saturating_sub(1)
    }
}

/// The two API endpoints a restricted OSN crawl exercises. Fault and
/// resilience machinery ([`crate::AdversarialOsn`]'s outage bursts and
/// circuit breakers) is keyed per endpoint: a friend-list outage does not
/// imply a profile outage, matching how real OSN APIs degrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EndpointKind {
    /// The friend-list (neighbor) endpoint.
    Neighbors,
    /// The profile-label endpoint.
    Labels,
}

/// A raw fetch-only backend: what the remote OSN itself answers, with no
/// accounting and no budget. [`crate::CachedOsn`] wraps one of these and
/// adds the shared cache plus [`crate::CallStats`] accounting; sessions
/// ([`crate::OsnSession`]) layer per-query logical-call accounting on top.
///
/// Implemented by [`crate::SimulatedOsn`] (fetches are its counted raw
/// calls, so wrapping a simulation in a cache leaves the simulation
/// counting exactly the backend traffic) and by [`crate::GraphOsn`] (a
/// pure, `Sync` graph view with zero interior mutability — the backend
/// the multi-threaded `labelcount_core::engine::Engine` uses).
pub trait OsnBackend {
    /// `|V|`.
    fn num_nodes(&self) -> usize;

    /// `|E|`.
    fn num_edges(&self) -> usize;

    /// Upper bound on the maximum degree.
    fn max_degree_bound(&self) -> usize;

    /// Fetches the sorted friend list of `u`. One backend API call.
    fn fetch_neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId>;

    /// Fetches the sorted profile labels of `u`. One backend API call.
    fn fetch_labels(&self, u: NodeId) -> SliceRef<'_, LabelId>;

    /// Fetches the friend list of `u` together with the number of billable
    /// API attempts it took (`>= 1`). Well-behaved backends answer in one
    /// attempt; adversarial backends ([`crate::AdversarialOsn`]) report the
    /// pages fetched and the retries their fault model forced, so callers
    /// can charge the *realized* cost against a query budget.
    fn fetch_neighbors_attempts(&self, u: NodeId) -> (SliceRef<'_, NodeId>, u64) {
        (self.fetch_neighbors(u), 1)
    }

    /// Fetches the profile labels of `u` together with the number of
    /// billable API attempts it took (`>= 1`). See
    /// [`OsnBackend::fetch_neighbors_attempts`].
    fn fetch_labels_attempts(&self, u: NodeId) -> (SliceRef<'_, LabelId>, u64) {
        (self.fetch_labels(u), 1)
    }

    /// Fetches the friend list of `u` together with its full realized
    /// [`FetchCost`] — attempts *and* latency ticks. Well-behaved backends
    /// answer at [`FetchCost::clean`]; adversarial backends report what
    /// their fault model billed, per fetch, so callers can advance a
    /// virtual clock in step with the cost.
    fn fetch_neighbors_cost(&self, u: NodeId) -> (SliceRef<'_, NodeId>, FetchCost) {
        let (data, attempts) = self.fetch_neighbors_attempts(u);
        (data, FetchCost { attempts, ticks: 0 })
    }

    /// Fetches the profile labels of `u` together with its full realized
    /// [`FetchCost`]. See [`OsnBackend::fetch_neighbors_cost`].
    fn fetch_labels_cost(&self, u: NodeId) -> (SliceRef<'_, LabelId>, FetchCost) {
        let (data, attempts) = self.fetch_labels_attempts(u);
        (data, FetchCost { attempts, ticks: 0 })
    }

    /// The current [`Epoch`] of `u`'s node region — the generation stamp
    /// cache layers compare against the stamp stored on an entry to decide
    /// staleness (`stored != current` means stale).
    ///
    /// Static backends (every pre-churn backend in the workspace) keep the
    /// default: a constant [`Epoch::STATIC`], under which no entry is ever
    /// stale and cache behavior is bit-identical to a world without
    /// epochs. Dynamic backends (`crate::ChurnOsn`) report the live
    /// per-region stamp of `labelcount_graph::MutableGraph`.
    fn epoch_of(&self, _u: NodeId) -> Epoch {
        Epoch::STATIC
    }

    /// The current label [`Epoch`] of `u`'s node region — the stamp cache
    /// layers compare for *profile* entries. Splitting label stamps from
    /// neighbor-list stamps lets a label-only flip invalidate profiles
    /// without touching cached friend lists.
    ///
    /// Defaults to [`OsnBackend::epoch_of`], so backends with a single
    /// shared stamp (and every static backend) behave exactly as before.
    fn label_epoch_of(&self, u: NodeId) -> Epoch {
        self.epoch_of(u)
    }

    /// Whether `kind` is currently degraded — an open circuit-breaker
    /// window, during which cache layers may opt into serving stale-epoch
    /// entries instead of refetching. Backends without a breaker (every
    /// non-adversarial backend) always answer `false`, which keeps the
    /// degradation path dead code for them.
    fn endpoint_degraded(&self, _kind: EndpointKind) -> bool {
        false
    }
}

/// Backends pass through shared references, so one `Sync` backend (e.g. a
/// [`crate::GraphOsn`] over the served graph) can sit under many
/// independent decorator stacks — the multi-query workload service builds
/// one `CachedOsn<AdversarialOsn<&GraphOsn>>` per query this way.
impl<B: OsnBackend + ?Sized> OsnBackend for &B {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn max_degree_bound(&self) -> usize {
        (**self).max_degree_bound()
    }

    fn fetch_neighbors(&self, u: NodeId) -> SliceRef<'_, NodeId> {
        (**self).fetch_neighbors(u)
    }

    fn fetch_labels(&self, u: NodeId) -> SliceRef<'_, LabelId> {
        (**self).fetch_labels(u)
    }

    fn fetch_neighbors_attempts(&self, u: NodeId) -> (SliceRef<'_, NodeId>, u64) {
        (**self).fetch_neighbors_attempts(u)
    }

    fn fetch_labels_attempts(&self, u: NodeId) -> (SliceRef<'_, LabelId>, u64) {
        (**self).fetch_labels_attempts(u)
    }

    fn fetch_neighbors_cost(&self, u: NodeId) -> (SliceRef<'_, NodeId>, FetchCost) {
        (**self).fetch_neighbors_cost(u)
    }

    fn fetch_labels_cost(&self, u: NodeId) -> (SliceRef<'_, LabelId>, FetchCost) {
        (**self).fetch_labels_cost(u)
    }

    fn epoch_of(&self, u: NodeId) -> Epoch {
        (**self).epoch_of(u)
    }

    fn label_epoch_of(&self, u: NodeId) -> Epoch {
        (**self).label_epoch_of(u)
    }

    fn endpoint_degraded(&self, kind: EndpointKind) -> bool {
        (**self).endpoint_degraded(kind)
    }
}
