//! Property-based tests for the restricted API and the implicit line
//! graph: degree identities, neighbor validity, target agreement, and call
//! accounting on arbitrary graphs.

use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::{GroundTruth, LabelId, LabeledGraph, NodeId, TargetLabel};
use labelcount_osn::{LineGraphView, LineNode, OsnApi, SimulatedOsn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (5usize..40, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
            .map(|i| vec![LabelId((i % 3) as u32)])
            .collect();
        labelcount_graph::labels::with_labels(&g, &labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn line_degree_identity_holds_everywhere(g in arb_labeled_ba()) {
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        for (u, v) in g.edges() {
            let e = LineNode::new(u, v);
            prop_assert_eq!(lg.degree(e), g.degree(u) + g.degree(v) - 2);
        }
    }

    #[test]
    fn line_neighbors_share_an_endpoint(g in arb_labeled_ba(), seed in any::<u64>()) {
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let mut rng = StdRng::seed_from_u64(seed);
        for (u, v) in g.edges().take(10) {
            let e = LineNode::new(u, v);
            if let Some(n) = lg.sample_neighbor(e, &mut rng) {
                prop_assert!(g.has_edge(n.u(), n.v()));
                prop_assert_ne!(n, e);
                let shares = n.u() == u || n.u() == v || n.v() == u || n.v() == v;
                prop_assert!(shares, "neighbor {n} does not touch {e}");
            }
        }
    }

    #[test]
    fn target_nodes_of_line_graph_count_f(g in arb_labeled_ba(), a in 0u32..3, b in 0u32..3) {
        // Counting target nodes of G' over all of H equals F in G — the
        // identity the baseline adaptation relies on (§5.1).
        let target = TargetLabel::new(LabelId(a), LabelId(b));
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let count = g
            .edges()
            .filter(|&(u, v)| lg.is_target(LineNode::new(u, v), target))
            .count();
        prop_assert_eq!(count, GroundTruth::compute(&g, target).f);
    }

    #[test]
    fn api_counters_are_exact(g in arb_labeled_ba(), queries in proptest::collection::vec(0u32..200, 1..30)) {
        let osn = SimulatedOsn::new(&g);
        let n = g.num_nodes() as u32;
        let mut distinct = std::collections::HashSet::new();
        for q in &queries {
            let u = NodeId(q % n);
            osn.neighbors(u);
            distinct.insert(u);
        }
        let s = osn.stats();
        prop_assert_eq!(s.neighbor_calls, queries.len() as u64);
        prop_assert_eq!(s.distinct_neighbor_calls, distinct.len() as u64);
        prop_assert_eq!(s.label_calls, 0);
        prop_assert_eq!(osn.api_calls(), queries.len() as u64);
    }

    #[test]
    fn budget_flag_flips_exactly_at_budget(g in arb_labeled_ba(), budget in 1u64..20) {
        let osn = SimulatedOsn::new(&g);
        osn.set_budget(budget);
        for i in 0..budget {
            prop_assert!(!osn.budget_exhausted(), "exhausted early at {i}");
            osn.neighbors(NodeId(0));
        }
        prop_assert!(osn.budget_exhausted());
    }

    #[test]
    fn max_degree_bound_dominates_all_line_degrees(g in arb_labeled_ba()) {
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let bound = lg.max_degree_bound();
        for (u, v) in g.edges() {
            prop_assert!(lg.degree(LineNode::new(u, v)) <= bound);
        }
    }
}
