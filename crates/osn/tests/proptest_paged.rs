//! Property-based tests for the out-of-core path: `PagedCsrWriter` →
//! `PagedGraphOsn` must round-trip *arbitrary* graphs bit-identical to
//! the in-RAM `GraphOsn` — neighbors, labels, degrees, and header
//! statistics — at every pool shape, including the degenerate graphs the
//! unit tests hand-pick (empty graphs, isolated nodes) and adjacency
//! lists straddling page boundaries (forced by tiny page sizes).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use labelcount_graph::paged::{EvictionPolicy, PagedCsrWriter, PoolConfig};
use labelcount_graph::{GraphBuilder, LabelId, LabeledGraph, NodeId};
use labelcount_osn::{GraphOsn, OsnBackend, PagedGraphOsn};
use proptest::prelude::*;

fn temp_file() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("labelcount_osn_paged_prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case_{}_{}.lcp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Arbitrary labeled graphs, degenerate shapes included: `n` may be 0
/// (the empty graph), the edge list may be empty or touch only a few
/// nodes (isolated nodes everywhere else), self-loop proposals are
/// dropped, and label sets vary per node (many nodes unlabeled).
fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    (
        0usize..40,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120),
        proptest::collection::vec(0usize..4, 0..40),
    )
        .prop_map(|(n, edges, label_counts)| {
            let mut b = GraphBuilder::new(n);
            if n > 1 {
                for (u, v) in edges {
                    let (u, v) = (u as usize % n, v as usize % n);
                    if u != v {
                        b.add_edge(NodeId(u as u32), NodeId(v as u32));
                    }
                }
            }
            for (i, &count) in label_counts.iter().take(n).enumerate() {
                let labels: Vec<LabelId> =
                    (0..count).map(|j| LabelId(((i + j) % 5) as u32)).collect();
                b.set_labels(NodeId(i as u32), &labels);
            }
            b.build()
        })
}

/// A hub star: one center adjacent to every other node, so at small page
/// sizes its neighbor list is guaranteed to straddle many pages.
fn arb_star() -> impl Strategy<Value = LabeledGraph> {
    (60usize..160).prop_map(|n| {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(NodeId(0), NodeId(v as u32));
        }
        b.set_labels(NodeId(0), &[LabelId(1), LabelId(2)]);
        b.build()
    })
}

fn assert_backends_agree(g: &LabeledGraph, page_size: u32, pool: PoolConfig) {
    let path = temp_file();
    let meta = PagedCsrWriter::with_page_size(page_size)
        .write(g, &path)
        .unwrap();
    assert_eq!(meta.page_size, page_size);
    let paged = PagedGraphOsn::open(&path, pool).unwrap();
    let ram = GraphOsn::new(g);

    assert_eq!(paged.num_nodes(), ram.num_nodes());
    assert_eq!(paged.num_edges(), ram.num_edges());
    assert_eq!(paged.max_degree_bound(), ram.max_degree_bound());
    for u in g.nodes() {
        assert_eq!(
            &*paged.fetch_neighbors(u),
            &*ram.fetch_neighbors(u),
            "neighbors({u}) diverged at page size {page_size}"
        );
        assert_eq!(
            &*paged.fetch_labels(u),
            &*ram.fetch_labels(u),
            "labels({u}) diverged at page size {page_size}"
        );
        assert_eq!(paged.graph().degree(u), g.degree(u));
    }
    drop(paged);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_graphs_round_trip_bit_identical(
        g in arb_graph(),
        page_size_sel in 0usize..2,
        frames in 0usize..4,
        policy_sel in 0usize..3,
    ) {
        let page_size = [128u32, 256][page_size_sel];
        let policy = EvictionPolicy::all()[policy_sel];
        // frames == 0 doubles as the unbounded pool.
        let pool = match frames {
            0 => PoolConfig::unbounded(),
            k => PoolConfig::bounded(k, policy),
        };
        assert_backends_agree(&g, page_size, pool);
    }

    #[test]
    fn page_straddling_hub_lists_round_trip_bit_identical(
        g in arb_star(),
        frames in 1usize..4,
    ) {
        // At page size 128 a 60..160-degree hub's adjacency spans
        // 2..6 pages; a 1..3-frame pool forces the multi-page span to
        // overcommit past its budget and still reassemble exactly.
        assert_backends_agree(&g, 128, PoolConfig::bounded(frames, EvictionPolicy::Lru));
    }

    #[test]
    fn empty_and_edgeless_graphs_round_trip(nodes in 0usize..6) {
        let g = GraphBuilder::new(nodes).build();
        assert_backends_agree(&g, 128, PoolConfig::unbounded());
    }
}
