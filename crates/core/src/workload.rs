//! The multi-query workload service: N concurrent estimation queries over
//! one graph, scheduled across a worker pool, optionally through a
//! hostile (fault-injecting) API.
//!
//! [`Engine`](crate::Engine) (PR 3) serves *replicates of one query*
//! through a shared cache. A production deployment instead sees a
//! **workload**: a stream of independent queries — different algorithms,
//! different budgets, different seeds — arriving in some order and
//! competing for workers. [`Workload`] models that stream and
//! [`run_workload`] executes it:
//!
//! * queries arrive in a **seeded arrival order** (a Fisher–Yates shuffle
//!   of the query list under the workload seed);
//! * a pool of `workers` threads pops queries off the arrival queue
//!   dynamically (stragglers never idle a whole worker);
//! * every query gets its **own access stack** —
//!   `CachedOsn<AdversarialOsn<&GraphOsn>>` over the shared graph view —
//!   so per-query budgets, retry charges, and fault patterns are fully
//!   isolated, like one crawler client per query against the same remote
//!   OSN;
//! * anytime progress is observable through [`WorkloadProgress`]: a
//!   [`RunningStats`] over completed-query estimates that a dashboard can
//!   poll mid-run.
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of per-query coordinates
//! ([`labelcount_osn::AdversarialOsn`]) and every query owns its RNG and
//! its cache, so the [`WorkloadReport`] — estimates, retry counts, latency
//! ticks, budget verdicts, and the summary statistics (accumulated in
//! query-id order) — is **bit-identical at any worker count**. Only the
//! *live* [`WorkloadProgress`] view is interleaving-dependent: it
//! aggregates in completion order, which is the point of an anytime
//! estimate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{
    AdversarialOsn, CacheConfig, CachedOsn, FaultConfig, GraphOsn, OsnApi, OsnBackend,
    ResilienceConfig, RetryPolicy,
};
use labelcount_stats::{replication_seed, RunningStats};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::algorithm::{algorithms, Algorithm, RunConfig};
use crate::request::Schedule;
pub use crate::request::{QueryOutcome, QuerySpec};

/// Stream ids for deriving the workload's internal seeds.
mod stream {
    pub const ARRIVAL: u64 = 1;
    pub const QUERY_RNG: u64 = 2;
    pub const QUERY_FAULT: u64 = 3;
}

/// A batch of queries plus the service-level knobs.
pub struct Workload {
    /// The queries, in id order.
    pub queries: Vec<QuerySpec>,
    /// Base seed: arrival order and per-query fault seeds derive from it.
    pub seed: u64,
    /// Shared run parameters (burn-in, thinning).
    pub run_config: RunConfig,
    /// The fault model every query's backend stack is decorated with
    /// (`FaultConfig::clean` for a well-behaved API). The configured seed
    /// is re-derived per query, so queries fault independently.
    pub faults: FaultConfig,
    /// Retry policy for fault recovery.
    pub retry: RetryPolicy,
    /// Reactive resilience knobs (circuit breaker, retry budget, stale
    /// serving) decorating every query's stack. The all-off default
    /// reproduces pre-resilience runs bit-identically.
    pub resilience: ResilienceConfig,
}

impl Workload {
    /// A mixed workload: `n` queries cycling through the paper's Table-2
    /// roster (`algorithms::all_paper`), all with the same target and
    /// sample budget, hard-budgeted at `6 × (budget + burn-in)` charged
    /// calls so a hostile API degrades queries instead of hanging them,
    /// while a well-behaved API completes every query. The burn-in
    /// allowance matters: burn-in is budget-*free* under the sample budget
    /// but charged against hard budgets (a real crawler is billed for its
    /// mixing walk too), and the line-graph baselines spend ~3 charged
    /// calls per burn-in step — without the allowance, a long burn-in
    /// alone would exhaust every query before sampling begins; the 6×
    /// headroom covers the hungriest Table-2 call profile plus moderate
    /// retry pressure.
    pub fn mixed(
        n: usize,
        target: TargetLabel,
        budget: usize,
        seed: u64,
        run_config: RunConfig,
    ) -> Workload {
        let hard_budget = 6 * (budget as u64 + run_config.burn_in as u64);
        let mut queries = Vec::with_capacity(n);
        // One boxed roster per ten queries, drained round-robin (the
        // roster order is the paper's Table 2).
        let mut pool: std::collections::VecDeque<Box<dyn Algorithm>> =
            std::collections::VecDeque::new();
        for id in 0..n as u64 {
            if pool.is_empty() {
                pool.extend(algorithms::all_paper(0.2, 0.5));
            }
            let algorithm = pool.pop_front().expect("roster is non-empty");
            queries.push(QuerySpec {
                id,
                algorithm,
                target,
                budget,
                hard_budget: Some(hard_budget),
                seed: replication_seed(seed, stream::QUERY_RNG + (id << 8)),
                schedule: Schedule::default(),
            });
        }
        Workload {
            queries,
            seed,
            run_config,
            faults: FaultConfig::clean(seed),
            retry: RetryPolicy::default(),
            resilience: ResilienceConfig::default(),
        }
    }

    /// Wraps this workload in a [`WorkloadBuilder`] to override the
    /// service-level knobs (fault model, retry policy) builder-style.
    pub fn builder(self) -> WorkloadBuilder {
        WorkloadBuilder { inner: self }
    }

    /// The seeded arrival order: query indices shuffled under the
    /// workload seed. Deterministic, independent of worker count.
    pub fn arrival_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.queries.len()).collect();
        let mut rng = StdRng::seed_from_u64(replication_seed(self.seed, stream::ARRIVAL));
        order.shuffle(&mut rng);
        order
    }
}

/// Builder over a fully-formed [`Workload`]: every knob starts at the
/// compile-time-checked default the constructor produced
/// ([`FaultConfig::clean`], [`RetryPolicy::default`]) and each setter
/// replaces exactly one of them. The serving layer's
/// `ServiceWorkloadBuilder` extends the same shape with admission, quota,
/// and scheduling knobs — one builder idiom across both layers, replacing
/// the scattered `with_*` methods.
///
/// ```
/// # use labelcount_core::{algorithm::RunConfig, workload::Workload};
/// # use labelcount_graph::TargetLabel;
/// # use labelcount_osn::{FaultConfig, RetryPolicy};
/// let w = Workload::mixed(8, TargetLabel::new(1.into(), 2.into()), 100, 7,
///                         RunConfig::default())
///     .builder()
///     .faults(FaultConfig::hostile(7, 0.2), RetryPolicy::default())
///     .build();
/// assert_eq!(w.queries.len(), 8);
/// ```
#[must_use = "builders do nothing until `.build()` is called"]
pub struct WorkloadBuilder {
    inner: Workload,
}

impl WorkloadBuilder {
    /// Replaces the fault model and retry policy.
    pub fn faults(mut self, faults: FaultConfig, retry: RetryPolicy) -> WorkloadBuilder {
        self.inner.faults = faults;
        self.inner.retry = retry;
        self
    }

    /// Replaces the reactive resilience knobs (breaker, retry budget,
    /// stale serving).
    pub fn resilience(mut self, resilience: ResilienceConfig) -> WorkloadBuilder {
        self.inner.resilience = resilience;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Workload {
        self.inner
    }
}

/// The deterministic result of a workload run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Per-query outcomes, in **query-id order** (not completion order).
    pub outcomes: Vec<QueryOutcome>,
    /// Summary over the successful estimates, accumulated in id order —
    /// deterministic, unlike the live progress view.
    pub summary: RunningStats,
}

impl WorkloadReport {
    /// Queries whose hard budget ran out.
    pub fn budget_exhausted_queries(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.budget_exhausted).count() as u64
    }

    /// Total retry charges across all queries.
    pub fn total_retry_charges(&self) -> u64 {
        self.outcomes.iter().map(|o| o.retry_charges).sum()
    }

    /// Total logical API calls across all queries.
    pub fn total_logical_calls(&self) -> u64 {
        self.outcomes.iter().map(|o| o.logical_calls).sum()
    }

    /// Total realized backend attempts across all queries.
    pub fn total_backend_attempts(&self) -> u64 {
        self.outcomes.iter().map(|o| o.backend_attempts).sum()
    }

    /// The `q`-th percentile of per-query simulated latency ticks
    /// (deterministic: a sorted multiset does not depend on completion
    /// order). `None` for an empty workload.
    pub fn latency_ticks_percentile(&self, q: f64) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let ticks: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.latency_ticks as f64)
            .collect();
        Some(labelcount_stats::percentile(&ticks, q))
    }
}

/// An immutable point-in-time view of partial estimate statistics — what
/// [`WorkloadProgress::partial_estimates`] hands to pollers.
///
/// Previously that method leaked the live [`RunningStats`] accumulator
/// itself, which invited pollers to `push`/`merge` into their copy (a
/// mutation the tracker never sees) and coupled the polling API to the
/// accumulator's full surface. The snapshot exposes only the read side,
/// plus the derived quantity every anytime consumer wants: a normal-
/// approximation 95% confidence halfwidth.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgressSnapshot {
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
    sample_variance: f64,
}

impl From<RunningStats> for ProgressSnapshot {
    fn from(s: RunningStats) -> ProgressSnapshot {
        ProgressSnapshot {
            count: s.count(),
            mean: s.mean(),
            min: s.min(),
            max: s.max(),
            sample_variance: s.sample_variance(),
        }
    }
}

impl ProgressSnapshot {
    /// Number of estimates observed when the snapshot was taken.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean of the observed estimates (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observed estimate (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed estimate (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample variance of the observed estimates (0 below two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        self.sample_variance
    }

    /// Halfwidth of the normal-approximation 95% confidence interval
    /// around [`ProgressSnapshot::mean`] (`1.96·√(s²/n)`; 0 below two
    /// observations). The anytime answer a cancelled query reports is
    /// `mean ± ci_halfwidth`.
    pub fn ci_halfwidth(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * (self.sample_variance / self.count as f64).sqrt()
        }
    }

    /// Whether no estimates had been observed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Live, anytime view of a running workload: completed-query count and a
/// [`RunningStats`] over the estimates seen so far.
///
/// Aggregated in **completion order**, so the low bits of the mean may
/// differ run to run — that is inherent to an anytime estimate; the
/// [`WorkloadReport::summary`] recomputed in id order is the
/// deterministic number.
#[derive(Default)]
pub struct WorkloadProgress {
    completed: AtomicUsize,
    partial: Mutex<RunningStats>,
}

impl WorkloadProgress {
    /// A fresh progress tracker.
    pub fn new() -> Self {
        WorkloadProgress::default()
    }

    /// Queries finished so far.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Snapshot of the running estimate statistics.
    ///
    /// Poison-tolerant: a worker that panics while holding the lock marks
    /// the mutex poisoned, but the payload is a `Copy` accumulator that is
    /// valid at every instant (`RunningStats::push` cannot be observed
    /// half-applied through the lock), so the progress view recovers the
    /// inner value instead of cascading the panic into every later read —
    /// one bad query must not take the anytime path down for the rest of
    /// a long-lived server's life.
    pub fn partial_estimates(&self) -> ProgressSnapshot {
        ProgressSnapshot::from(*self.partial.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Records one finished query: `Some(estimate)` on success (only
    /// finite values enter the statistics), `None` for a query that
    /// finished without an estimate. Called by the runners
    /// ([`run_workload_observed`] and the serving layer's scheduler);
    /// pollers only read.
    pub fn record(&self, estimate: Option<f64>) {
        // Same filter as the deterministic summary: only finite estimates
        // enter the statistics (an HT estimator can return a non-finite
        // value on a degenerate sample).
        if let Some(e) = estimate {
            if e.is_finite() {
                // Recover from poisoning for the same reason as
                // `partial_estimates`: the accumulator is always valid.
                self.partial
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(e);
            }
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs `workload` over `graph` on up to `workers` threads. See the
/// [module docs](self) for the execution and determinism model.
pub fn run_workload(graph: &LabeledGraph, workload: &Workload, workers: usize) -> WorkloadReport {
    run_workload_observed(graph, workload, workers, &WorkloadProgress::new())
}

/// [`run_workload`] with a caller-owned [`WorkloadProgress`] that another
/// thread can poll for anytime partial estimates.
pub fn run_workload_observed(
    graph: &LabeledGraph,
    workload: &Workload,
    workers: usize,
    progress: &WorkloadProgress,
) -> WorkloadReport {
    run_workload_observed_on(&GraphOsn::new(graph), workload, workers, progress)
}

/// Runs `workload` over any shared [`OsnBackend`] — the in-RAM
/// [`GraphOsn`] or the out-of-core `labelcount_osn::PagedGraphOsn` — on up
/// to `workers` threads.
///
/// Per-query access stacks (`CachedOsn<AdversarialOsn<&B>>`) are built over
/// `backend` exactly as [`run_workload`] builds them over its `GraphOsn`,
/// so a backend that serves identical bytes yields a bit-identical report.
pub fn run_workload_on<B: OsnBackend + Sync>(
    backend: &B,
    workload: &Workload,
    workers: usize,
) -> WorkloadReport {
    run_workload_observed_on(backend, workload, workers, &WorkloadProgress::new())
}

/// [`run_workload_on`] with a caller-owned [`WorkloadProgress`].
pub fn run_workload_observed_on<B: OsnBackend + Sync>(
    shared: &B,
    workload: &Workload,
    workers: usize,
    progress: &WorkloadProgress,
) -> WorkloadReport {
    let order = workload.arrival_order();
    let n = order.len();
    let workers = workers.max(1).min(n.max(1));

    let run_one = |qi: usize| -> QueryOutcome {
        let q = &workload.queries[qi];
        let fault_cfg = FaultConfig {
            seed: replication_seed(replication_seed(workload.seed, stream::QUERY_FAULT), q.id),
            ..workload.faults
        };
        let backend =
            AdversarialOsn::with_resilience(shared, fault_cfg, workload.retry, workload.resilience);
        let cache = CachedOsn::with_config(
            backend,
            CacheConfig::builder()
                .serve_stale(workload.resilience.serve_stale)
                .build(),
        );
        let session = cache.session();
        if let Some(b) = q.hard_budget {
            session.set_budget(b);
        }
        let mut rng = StdRng::seed_from_u64(q.seed);
        let estimate =
            q.algorithm
                .estimate(&session, q.target, q.budget, &workload.run_config, &mut rng);
        let budget_exhausted = session.budget_exhausted();
        let logical_calls = session.api_calls();
        let retry_charges = session.retry_charges();
        let stale_served = session.stale_served();
        drop(session);
        let faults = cache.backend().fault_stats();
        progress.record(estimate.as_ref().ok().copied());
        QueryOutcome {
            id: q.id,
            abbrev: q.algorithm.abbrev(),
            estimate,
            logical_calls,
            retry_charges,
            backend_attempts: faults.attempts,
            rate_limited: faults.rate_limited,
            transient_errors: faults.transient_errors,
            latency_ticks: faults.latency_ticks,
            budget_exhausted,
            bursts: faults.bursts,
            breaker_opens: faults.breaker_opens,
            stale_served,
        }
    };

    let mut outcomes: Vec<QueryOutcome> = if workers == 1 || n <= 1 {
        order.iter().map(|&qi| run_one(qi)).collect()
    } else {
        // Dynamic handout over the arrival queue, merged once per worker —
        // the same scheduling discipline as `labelcount_stats::replicate`.
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= n {
                            break;
                        }
                        local.push(run_one(order[pos]));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        collected.into_inner().unwrap()
    };

    outcomes.sort_by_key(|o| o.id);
    let mut summary = RunningStats::new();
    for o in &outcomes {
        if let Ok(e) = o.estimate {
            if e.is_finite() {
                summary.push(e);
            }
        }
    }
    WorkloadReport { outcomes, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EstimateError;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};

    fn fixture(seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(300, 3, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.4, &mut rng);
        with_labels(&g, &labels)
    }

    fn target() -> TargetLabel {
        TargetLabel::new(1.into(), 2.into())
    }

    fn cfg() -> RunConfig {
        RunConfig {
            burn_in: 30,
            thinning_frac: 0.0,
        }
    }

    fn mixed(n: usize, seed: u64, rate: f64) -> Workload {
        Workload::mixed(n, target(), 100, seed, cfg())
            .builder()
            .faults(FaultConfig::hostile(seed, rate), RetryPolicy::default())
            .build()
    }

    #[test]
    fn builder_replaces_the_fault_knobs() {
        // The builder is the only fault-configuration path now that the
        // deprecated `with_faults` has completed its one-release grace
        // period and is gone.
        let w = Workload::mixed(4, target(), 50, 9, cfg())
            .builder()
            .faults(FaultConfig::hostile(9, 0.3), RetryPolicy::default())
            .build();
        assert_eq!(w.faults.seed, 9);
        assert!(w.faults.transient_rate > 0.0);
        assert_eq!(w.retry.max_attempts, RetryPolicy::default().max_attempts);
    }

    #[test]
    fn mixed_workload_covers_the_roster_and_shuffles_arrivals() {
        let w = mixed(12, 5, 0.2);
        assert_eq!(w.queries.len(), 12);
        let abbrevs: Vec<&str> = w.queries.iter().map(|q| q.algorithm.abbrev()).collect();
        // 12 queries over a 10-strong roster: first ten distinct.
        let mut distinct = abbrevs[..10].to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 10);
        let order = w.arrival_order();
        assert_eq!(order.len(), 12);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        assert_ne!(
            order,
            (0..12).collect::<Vec<_>>(),
            "arrival order must shuffle"
        );
        assert_eq!(order, w.arrival_order(), "arrival order must be stable");
    }

    #[test]
    fn report_is_in_id_order_with_sound_accounting() {
        let g = fixture(1);
        let report = run_workload(&g, &mixed(10, 7, 0.3), 2);
        assert_eq!(report.outcomes.len(), 10);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, i as u64);
            assert!(o.logical_calls > 0, "query {i} did no work");
            // Realized cost is at least the misses that reached the
            // backend; charges are exactly the extra attempts.
            assert!(o.backend_attempts >= o.retry_charges);
            assert!(o.latency_ticks > 0, "hostile API must cost latency");
        }
        assert!(report.total_retry_charges() > 0, "rate 0.3 must retry");
        assert!(report.total_backend_attempts() > 0);
        let p50 = report.latency_ticks_percentile(50.0).unwrap();
        let p95 = report.latency_ticks_percentile(95.0).unwrap();
        assert!(p50 <= p95);
        assert!(report.summary.count() > 0);
    }

    #[test]
    fn clean_faults_charge_nothing() {
        let g = fixture(2);
        let w = Workload::mixed(6, target(), 80, 3, cfg());
        let report = run_workload(&g, &w, 3);
        assert_eq!(report.total_retry_charges(), 0);
        assert_eq!(report.budget_exhausted_queries(), 0);
        for o in &report.outcomes {
            assert!(o.estimate.is_ok());
            assert_eq!(o.latency_ticks, 0);
            assert_eq!(o.rate_limited, 0);
            assert_eq!(o.transient_errors, 0);
        }
    }

    #[test]
    fn worker_count_never_changes_the_report() {
        let g = fixture(3);
        let w = mixed(9, 11, 0.35);
        let baseline = run_workload(&g, &w, 1);
        for workers in [2usize, 4, 8] {
            let r = run_workload(&g, &w, workers);
            assert_eq!(r.outcomes.len(), baseline.outcomes.len());
            for (a, b) in baseline.outcomes.iter().zip(&r.outcomes) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.estimate.as_ref().map(|e| e.to_bits()),
                    b.estimate.as_ref().map(|e| e.to_bits()),
                    "query {} estimate diverged at {workers} workers",
                    a.id
                );
                assert_eq!(a.retry_charges, b.retry_charges, "query {}", a.id);
                assert_eq!(a.latency_ticks, b.latency_ticks, "query {}", a.id);
                assert_eq!(a.backend_attempts, b.backend_attempts, "query {}", a.id);
                assert_eq!(a.budget_exhausted, b.budget_exhausted, "query {}", a.id);
            }
            assert_eq!(
                baseline.summary.mean().to_bits(),
                r.summary.mean().to_bits(),
                "summary diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn hostile_api_exhausts_tight_budgets() {
        let g = fixture(4);
        let mut w = mixed(8, 13, 0.5);
        for q in &mut w.queries {
            q.hard_budget = Some(60); // far below the 100-call sample budget
            q.budget = 1_000;
        }
        let report = run_workload(&g, &w, 2);
        assert!(
            report.budget_exhausted_queries() > 0,
            "a 0.5-fault-rate API under a 60-call budget must exhaust"
        );
        for o in &report.outcomes {
            if o.budget_exhausted {
                assert!(
                    matches!(o.estimate, Err(EstimateError::BudgetExhausted { .. })),
                    "query {}: exhaustion must surface as an error",
                    o.id
                );
            }
        }
    }

    #[test]
    fn progress_view_reaches_the_final_count() {
        let g = fixture(5);
        let w = mixed(7, 17, 0.2);
        let progress = WorkloadProgress::new();
        let report = run_workload_observed(&g, &w, 4, &progress);
        assert_eq!(progress.completed(), 7);
        // The anytime view saw every successful estimate (order may
        // differ; count and extremes cannot).
        let partial = progress.partial_estimates();
        assert_eq!(partial.count(), report.summary.count());
        assert_eq!(partial.min().to_bits(), report.summary.min().to_bits());
        assert_eq!(partial.max().to_bits(), report.summary.max().to_bits());
    }

    #[test]
    fn poisoned_progress_lock_recovers_instead_of_cascading() {
        // Regression: `partial.lock().unwrap()` turned one panicked worker
        // into a cascade — every later progress read re-panicked on the
        // poisoned mutex, exactly wrong for a long-lived server.
        let progress = WorkloadProgress::new();
        progress.record(Some(10.0));

        // A worker dies while holding the progress lock.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = progress.partial.lock().unwrap();
            panic!("worker panicked mid-update");
        }));
        assert!(poison.is_err());
        assert!(progress.partial.is_poisoned(), "lock must be poisoned");

        // Reads and writes recover the (always-valid) payload.
        let snapshot = progress.partial_estimates();
        assert_eq!(snapshot.count(), 1);
        assert_eq!(snapshot.min(), 10.0);
        progress.record(Some(20.0));
        let snapshot = progress.partial_estimates();
        assert_eq!(snapshot.count(), 2);
        assert_eq!(snapshot.max(), 20.0);
        assert_eq!(progress.completed(), 2);
    }

    #[test]
    fn fault_rate_raises_realized_cost() {
        let g = fixture(6);
        let clean = run_workload(&g, &mixed(8, 19, 0.0), 2);
        let hostile = run_workload(&g, &mixed(8, 19, 0.4), 2);
        assert!(
            hostile.total_backend_attempts() > clean.total_backend_attempts(),
            "faults must raise the realized API cost: {} vs {}",
            hostile.total_backend_attempts(),
            clean.total_backend_attempts()
        );
        // Identical logical demand: faults delay and charge, never alter
        // the estimator's call sequence.
        assert_eq!(clean.total_logical_calls(), hostile.total_logical_calls());
    }
}
