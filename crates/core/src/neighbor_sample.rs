//! NeighborSample (paper §4.1): uniform edge sampling via random walk.
//!
//! A single simple random walk is burned in for the mixing time, then each
//! further step traverses an edge which becomes a sample. Because the walk
//! is stationary, each sampled edge is uniform on `E` (probability
//! `1/|E|`; §4.1.2) — the walk-based replacement for the `k` independent
//! walk processes of Algorithm 1, as the paper's implementation note
//! prescribes.
//!
//! # API-call budgets
//!
//! The paper's evaluation quotes sample sizes as **API calls** (a share of
//! `|V|`), and the crossover between NeighborSample and
//! NeighborExploration (§5.3) is driven by how the two spend those calls.
//! The budgeted entry points ([`run_neighbor_sample`] and the
//! [`Algorithm`] impls) therefore account per call: every neighbor-list
//! fetch and every profile fetch costs one call, and sampling stops once
//! the budget is spent (burn-in is excluded, matching the paper's
//! convention that pre-mixing nodes are simply not part of the sample).
//! One NeighborSample edge costs ~3 calls: the walk step plus the two
//! endpoint profiles.

use labelcount_graph::{NodeId, TargetLabel};
use labelcount_osn::{OsnApi, OsnApiExt};
use labelcount_walk::{SimpleWalk, Walker};
use rand::{Rng, RngCore};
use std::collections::HashSet;

use crate::algorithm::{Algorithm, RunConfig};
use crate::error::EstimateError;

/// Which of the two target labels node `u` carries — one profile call.
pub(crate) fn label_flags(osn: &dyn OsnApi, u: NodeId, target: TargetLabel) -> (bool, bool) {
    let ls = osn.labels(u);
    (
        ls.binary_search(&target.first()).is_ok(),
        ls.binary_search(&target.second()).is_ok(),
    )
}

/// Whether `(u, v)` is a target edge, observed through the API (two
/// profile calls).
pub(crate) fn is_target_edge(osn: &dyn OsnApi, u: NodeId, v: NodeId, target: TargetLabel) -> bool {
    let (u1, u2) = label_flags(osn, u, target);
    if !u1 && !u2 {
        return false;
    }
    let (v1, v2) = label_flags(osn, v, target);
    (u1 && v2) || (u2 && v1)
}

/// Picks a walk start with at least one friend (retries random users; the
/// paper's crawls start from an arbitrary seed user inside the giant
/// component).
pub(crate) fn random_walk_start(
    osn: &dyn OsnApi,
    rng: &mut (impl Rng + ?Sized),
) -> Result<NodeId, EstimateError> {
    if osn.num_nodes() == 0 || osn.num_edges() == 0 {
        return Err(EstimateError::EmptyGraph);
    }
    for _ in 0..10_000 {
        let u = osn.random_node(rng);
        if osn.degree(u) > 0 {
            return Ok(u);
        }
    }
    Err(EstimateError::EmptyGraph)
}

/// One sampled edge: the edge the walk traversed at a retained step.
pub type SampledEdge = (NodeId, NodeId);

/// Runs the NeighborSample process with an explicit sample count: burn-in,
/// then retain the traversed edge every `thin` steps until `k` edges are
/// collected. (The budgeted variant used by the [`Algorithm`] impls is
/// [`run_neighbor_sample`].)
pub fn sample_edges(
    osn: &dyn OsnApi,
    k: usize,
    burn_in: usize,
    thin: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<SampledEdge>, EstimateError> {
    if k == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let thin = thin.max(1);
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);

    let mut edges = Vec::with_capacity(k);
    while edges.len() < k {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: edges.len(),
            });
        }
        for _ in 0..thin - 1 {
            walk.step(osn, rng);
        }
        let prev = Walker::<dyn OsnApi>::current(&walk);
        let cur = walk.step(osn, rng);
        debug_assert_ne!(prev, cur, "stationary walk cannot be stuck");
        edges.push((prev, cur));
    }
    Ok(edges)
}

/// An edge sample with its target flag, as collected under a budget.
#[derive(Clone, Copy, Debug)]
pub struct EdgeObservation {
    /// The sampled edge.
    pub edge: SampledEdge,
    /// Whether it is a target edge.
    pub is_target: bool,
}

/// Runs the NeighborSample process under an API-call budget: burn-in
/// (budget-free), then walk-and-check until `budget` calls are spent. At
/// least one edge is always collected; each costs ~3 calls (step + two
/// profiles).
pub fn run_neighbor_sample(
    osn: &dyn OsnApi,
    target: TargetLabel,
    budget: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<EdgeObservation>, EstimateError> {
    if budget == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);
    let spent0 = osn.api_calls();

    let mut out = Vec::new();
    loop {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: out.len(),
            });
        }
        let prev = Walker::<dyn OsnApi>::current(&walk);
        let cur = walk.step(osn, rng);
        debug_assert_ne!(prev, cur, "stationary walk cannot be stuck");
        out.push(EdgeObservation {
            edge: (prev, cur),
            is_target: is_target_edge(osn, prev, cur, target),
        });
        if (osn.api_calls() - spent0) as usize >= budget {
            break;
        }
    }
    Ok(out)
}

/// Inclusion probability of a single edge after `k` uniform edge draws:
/// `Pr(e ∈ S) = 1 − (1 − 1/|E|)^k` (§4.1.3).
pub fn edge_inclusion_probability(num_edges: usize, k: usize) -> f64 {
    1.0 - (1.0 - 1.0 / num_edges as f64).powi(k as i32)
}

/// NeighborSample with the Hansen–Hurwitz estimator (Eq. 2):
/// `F̂ = (1/k) Σᵢ |E| · I(Xᵢ)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NsHansenHurwitz;

impl Algorithm for NsHansenHurwitz {
    fn abbrev(&self) -> &'static str {
        "NeighborSample-HH"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        let obs = run_neighbor_sample(osn, target, budget, cfg.burn_in, rng)?;
        let hits = obs.iter().filter(|o| o.is_target).count();
        Ok(osn.num_edges() as f64 * hits as f64 / obs.len() as f64)
    }
}

/// NeighborSample with the Horvitz–Thompson estimator (Eq. 3):
/// `F̂ = Σ_{e ∈ S distinct} I(e) / (1 − (1 − 1/|E|)^k)`.
///
/// When `cfg.thinning_frac > 0`, only every `r`-th draw
/// (`r = thinning_frac · k`) enters the sample set, the paper's §4.1.3
/// strategy for approximately independent draws, and the retained count is
/// used as `k` in the inclusion probability.
///
/// Without thinning the estimator carries a small negative bias of order
/// `O(1/mean degree)`: consecutive walk edges are adjacent, so short-range
/// recurrence deflates the distinct count relative to the independent-draw
/// inclusion probability. On OSN-scale mean degrees (tens) this is a few
/// percent; the thinning ablation bench quantifies the trade-off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NsHorvitzThompson;

/// Applies the §4.1.3 thinning rule: keep every `r`-th observation with
/// `r = max(1, round(frac·n))`. `frac = 0` keeps everything.
pub(crate) fn thin_indices(n: usize, frac: f64) -> impl Iterator<Item = usize> {
    let r = if frac > 0.0 {
        ((frac * n as f64).round() as usize).max(1)
    } else {
        1
    };
    (0..n).step_by(r)
}

impl Algorithm for NsHorvitzThompson {
    fn abbrev(&self) -> &'static str {
        "NeighborSample-HT"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        let obs = run_neighbor_sample(osn, target, budget, cfg.burn_in, rng)?;
        let mut distinct: HashSet<SampledEdge> = HashSet::new();
        let mut hits = 0usize;
        let mut retained = 0usize;
        for i in thin_indices(obs.len(), cfg.thinning_frac) {
            retained += 1;
            let (u, v) = obs[i].edge;
            let key = if u < v { (u, v) } else { (v, u) };
            if distinct.insert(key) && obs[i].is_target {
                hits += 1;
            }
        }
        let pr = edge_inclusion_probability(osn.num_edges(), retained);
        Ok(hits as f64 / pr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{GraphBuilder, GroundTruth, LabelId, LabeledGraph};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_ba(seed: u64, n: usize, m: usize, p1: f64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng);
        let mut labels = vec![Vec::new(); n];
        assign_binary_labels(&mut labels, p1, &mut rng);
        with_labels(&g, &labels)
    }

    fn target() -> TargetLabel {
        TargetLabel::new(LabelId(1), LabelId(2))
    }

    #[test]
    fn sampled_edges_are_real_edges() {
        let g = labeled_ba(1, 200, 3, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let edges = sample_edges(&osn, 100, 50, 1, &mut rng).unwrap();
        assert_eq!(edges.len(), 100);
        for (u, v) in edges {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn edge_sampling_is_uniform() {
        // Stationary-walk edges must be uniform over E (§4.1.2).
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        let trials = 60_000;
        let edges = sample_edges(&osn, trials, 200, 1, &mut rng).unwrap();
        for (u, v) in edges {
            let key = if u < v { (u, v) } else { (v, u) };
            *counts.entry(key).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), g.num_edges());
        for (&e, &c) in &counts {
            let frac = c as f64 / trials as f64;
            let want = 1.0 / g.num_edges() as f64;
            assert!((frac - want).abs() < 0.02, "edge {e:?}: {frac} vs {want}");
        }
    }

    #[test]
    fn budgeted_run_respects_api_budget() {
        let g = labeled_ba(4, 400, 3, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let budget = 300;
        let before = osn.api_calls();
        let obs = run_neighbor_sample(&osn, target(), budget, 30, &mut rng).unwrap();
        // Burn-in calls excluded: measure from the snapshot inside — here
        // we check the sampled-phase cost is close to the budget (at most
        // one sample's overshoot ≈ 3 calls).
        let spent = osn.api_calls() - before - 30; // subtract burn-in steps
        assert!(spent as usize >= budget, "spent {spent}");
        assert!(spent as usize <= budget + 4, "spent {spent}");
        // Each sample costs ~3 calls.
        assert!(
            obs.len() >= budget / 4 && obs.len() <= budget,
            "{}",
            obs.len()
        );
    }

    #[test]
    fn hh_estimator_is_approximately_unbiased() {
        let g = labeled_ba(4, 400, 3, 0.4);
        let gt = GroundTruth::compute(&g, target());
        assert!(gt.f > 0);
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let reps = 120;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NsHansenHurwitz
                .estimate(&osn, target(), 1_200, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        assert!(rel < 0.1, "mean {mean} vs F {}", gt.f);
    }

    #[test]
    fn ht_estimator_is_approximately_unbiased() {
        let g = labeled_ba(6, 400, 3, 0.4);
        let gt = GroundTruth::compute(&g, target());
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.025,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let reps = 120;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NsHorvitzThompson
                .estimate(&osn, target(), 900, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        assert!(rel < 0.12, "mean {mean} vs F {}", gt.f);
    }

    #[test]
    fn all_target_graph_estimates_exactly() {
        // Every edge is a target edge ⇒ HH returns exactly |E|.
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        let g = b.build();
        let labels = vec![vec![LabelId(1), LabelId(2)]; 4];
        let g = labelcount_graph::labels::with_labels(&g, &labels);
        let osn = SimulatedOsn::new(&g);
        let cfg = RunConfig {
            burn_in: 20,
            thinning_frac: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let est = NsHansenHurwitz
            .estimate(&osn, target(), 150, &cfg, &mut rng)
            .unwrap();
        assert_eq!(est, g.num_edges() as f64);
    }

    #[test]
    fn zero_target_edges_estimates_zero() {
        let g = labeled_ba(9, 150, 3, 1.0); // everyone label 1 ⇒ no (1,2) edges
        let osn = SimulatedOsn::new(&g);
        let cfg = RunConfig::default();
        let mut rng = StdRng::seed_from_u64(10);
        let hh = NsHansenHurwitz
            .estimate(&osn, target(), 300, &cfg, &mut rng)
            .unwrap();
        let ht = NsHorvitzThompson
            .estimate(&osn, target(), 300, &cfg, &mut rng)
            .unwrap();
        assert_eq!(hh, 0.0);
        assert_eq!(ht, 0.0);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new(0).build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(
            run_neighbor_sample(&osn, target(), 10, 10, &mut rng).unwrap_err(),
            EstimateError::EmptyGraph
        );
    }

    #[test]
    fn zero_budget_rejected() {
        let g = labeled_ba(12, 50, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(
            run_neighbor_sample(&osn, target(), 0, 10, &mut rng).unwrap_err(),
            EstimateError::ZeroSampleSize
        );
        assert_eq!(
            sample_edges(&osn, 0, 10, 1, &mut rng).unwrap_err(),
            EstimateError::ZeroSampleSize
        );
    }

    #[test]
    fn hard_budget_exhaustion_reported_with_progress() {
        let g = labeled_ba(14, 100, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        osn.set_budget(60);
        let mut rng = StdRng::seed_from_u64(15);
        match run_neighbor_sample(&osn, target(), 100_000, 10, &mut rng) {
            Err(EstimateError::BudgetExhausted { collected }) => {
                assert!(collected > 0);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn inclusion_probability_limits() {
        let pr = edge_inclusion_probability(1_000_000, 100);
        assert!((pr - 100.0 / 1_000_000.0).abs() / pr < 1e-3);
        assert!(edge_inclusion_probability(10, 1_000) > 0.999_999);
    }

    #[test]
    fn thinning_keeps_every_rth() {
        let idx: Vec<usize> = thin_indices(100, 0.1).collect();
        assert_eq!(idx, (0..100).step_by(10).collect::<Vec<_>>());
        let all: Vec<usize> = thin_indices(5, 0.0).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // r never zero even for tiny n.
        assert_eq!(thin_indices(3, 0.01).count(), 3);
    }

    #[test]
    fn minimal_budget_still_collects_one_sample() {
        let g = labeled_ba(16, 80, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(17);
        let obs = run_neighbor_sample(&osn, target(), 1, 5, &mut rng).unwrap();
        assert_eq!(obs.len(), 1);
    }
}

#[cfg(test)]
mod sparse_regime_tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{GroundTruth, LabelId, TargetLabel};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Without thinning the HT estimator is still approximately unbiased
    /// as long as the draw count stays well below `|E|` (the regime of
    /// every experiment in the paper); the correlation bias only appears
    /// in dense regimes, which the thinning ablation bench demonstrates.
    #[test]
    fn ht_without_thinning_unbiased_in_sparse_regime() {
        let mut rng = StdRng::seed_from_u64(71);
        // Mean degree ~20: the short-recurrence dedup bias of the
        // unthinned HT estimator scales as O(1/mean degree), so it is a
        // few percent here (and less on the denser surrogates).
        let g = barabasi_albert(2_000, 10, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.4, &mut rng);
        let g = with_labels(&g, &labels);
        let target = TargetLabel::new(LabelId(1), LabelId(2));
        let gt = GroundTruth::compute(&g, target);
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.0,
        };
        let reps = 100;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NsHorvitzThompson
                .estimate(&osn, target, 900, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        assert!(rel < 0.1, "mean {mean} vs F {}", gt.f);
    }
}
