//! # labelcount-core
//!
//! Estimators for **counting edges with target labels** in online social
//! networks via random walk — the primary contribution of Wu, Long, Fu &
//! Chen (EDBT 2018).
//!
//! Given a target edge label `(t1, t2)`, the number of target edges `F` is
//! estimated from a single random walk over the restricted OSN API:
//!
//! * **NeighborSample** (§4.1, [`neighbor_sample`]) — samples edges
//!   uniformly (each walk step traverses a uniform edge) and applies the
//!   Hansen–Hurwitz ([`NsHansenHurwitz`]) or Horvitz–Thompson
//!   ([`NsHorvitzThompson`]) estimator.
//! * **NeighborExploration** (§4.2, [`neighbor_exploration`]) — samples
//!   nodes from the walk's stationary distribution and, whenever a sampled
//!   node carries one of the target labels, explores its whole
//!   neighborhood to record `T(u)`, the number of incident target edges.
//!   Estimators: Hansen–Hurwitz ([`NeHansenHurwitz`]), Horvitz–Thompson
//!   ([`NeHorvitzThompson`]) and Re-weighted ([`NeReweighted`]).
//! * **Baselines** (§5.1, [`baselines`]) — the five node-count estimators
//!   of Li et al. (ICDE 2015) run on the implicit line graph `G'`:
//!   [`ExRw`], [`ExMhrw`], [`ExMdrw`], [`ExRcmh`], [`ExGmd`].
//! * **Bounds** ([`bounds`]) — the `(ε, δ)`-approximation sample-size
//!   bounds of Theorems 4.1–4.5.
//! * **Extensions** — [`motifs`] estimates label-refined wedge and
//!   triangle counts (the paper's §6 future work); [`size`] estimates
//!   `|V|` and `|E|` via walk collisions (the paper's prior-knowledge
//!   assumption, refs \[11\]/\[23\]), so the pipeline runs even when the OSN
//!   does not publish its size.
//!
//! All estimators implement the object-safe [`Algorithm`] trait so the
//! experiment harness can sweep them uniformly; [`algorithms::all_paper`]
//! returns the ten algorithms of the paper's Table 2. Every estimator
//! takes `&dyn labelcount_osn::OsnApi`, so the same compiled code runs
//! against the direct simulation or the thread-safe cached access layer;
//! [`engine::Engine`] packages the latter — one graph behind a shared
//! cache, serving many (optionally parallel-replicated) queries — and
//! [`workload`] turns it into a multi-query service: N concurrent
//! mixed-algorithm queries with seeded arrival order, per-query budgets,
//! and (optionally) a hostile, fault-injecting API between the estimators
//! and the graph, deterministic at any worker count.

#![warn(missing_docs)]

pub mod algorithm;
pub mod baselines;
pub mod bounds;
pub mod engine;
pub mod error;
pub mod motifs;
pub mod neighbor_exploration;
pub mod neighbor_sample;
pub mod request;
pub mod size;
pub mod workload;

pub use algorithm::{algorithms, Algorithm, RunConfig};
pub use baselines::{ExGmd, ExMdrw, ExMhrw, ExRcmh, ExRw};
pub use bounds::ApproxParams;
pub use engine::{Engine, StepBudget};
pub use error::EstimateError;
pub use neighbor_exploration::{NeHansenHurwitz, NeHorvitzThompson, NeReweighted};
pub use neighbor_sample::{NsHansenHurwitz, NsHorvitzThompson};
pub use request::{Priority, QueryOutcome, QuerySpec, Schedule};
pub use workload::{
    run_workload, run_workload_observed, ProgressSnapshot, Workload, WorkloadBuilder,
    WorkloadProgress, WorkloadReport,
};
