//! The unified request/outcome surface shared by the single-graph
//! workload runner and the multi-graph serving layer.
//!
//! Before this module, [`QuerySpec`]/`ServiceRequest` and
//! `WorkloadReport`/`ServiceReport` duplicated most of their fields with
//! no shared types: a service request re-declared the algorithm, target,
//! budget, and seed instead of embedding the query, and the serving layer
//! re-wrapped [`QueryOutcome`] rather than reusing it. Every new
//! scheduling knob would have had to land twice. This module is the one
//! surface both layers build on:
//!
//! * [`QuerySpec`] — one estimation query: the estimator, its target and
//!   budgets, its RNG seed, and (new) its [`Schedule`] — when it arrives
//!   on the virtual clock, how long it may run, and at what [`Priority`];
//! * [`QueryOutcome`] — what one executed query produced, embedded as-is
//!   by both `WorkloadReport` and `ServiceStatus::Completed`;
//! * the serving layer's `ServiceRequest` *embeds* a [`QuerySpec`] and
//!   adds only the routing coordinates (tenant, graph), with `From` impls
//!   both ways.
//!
//! # Virtual time
//!
//! All scheduling fields are quoted in **latency ticks** — the simulated
//! time unit `labelcount_osn::AdversarialOsn` bills per fetch attempt.
//! A [`Schedule`] never references wall-clock time, so scheduled runs stay
//! bit-identical across machines, shard counts, and worker counts.

use labelcount_graph::TargetLabel;

use crate::algorithm::Algorithm;
use crate::error::EstimateError;

/// Scheduling priority of a query. The deadline scheduler runs strictly
/// higher-priority runnable work first (FIFO within a class); priorities
/// never affect *what* a query answers, only *when* it runs — and
/// therefore how much virtual time it has left before its deadline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Scheduled before normal and low work.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Runs only when no higher class is runnable.
    Low,
}

impl Priority {
    /// Scheduling rank: lower runs first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// When a query arrives on the virtual clock and how long it may run.
///
/// The default schedule ([`Schedule::immediate`]) arrives at tick 0 with
/// no deadline at normal priority — exactly the pre-scheduler behavior,
/// so unscheduled workloads are unaffected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Virtual tick at which the query arrives (it cannot run earlier).
    pub arrival_tick: u64,
    /// Relative deadline: the query must finish within this many ticks of
    /// its arrival or be cancelled into an anytime answer. `None` = no
    /// deadline. `Some(0)` is cancelled the moment it arrives — the
    /// degenerate "answer from whatever you already know" request.
    pub deadline_ticks: Option<u64>,
    /// Scheduling class.
    pub priority: Priority,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::immediate()
    }
}

impl Schedule {
    /// Arrives at tick 0, no deadline, normal priority.
    pub fn immediate() -> Schedule {
        Schedule {
            arrival_tick: 0,
            deadline_ticks: None,
            priority: Priority::Normal,
        }
    }

    /// Arrives at `arrival_tick`, no deadline, normal priority.
    pub fn at(arrival_tick: u64) -> Schedule {
        Schedule {
            arrival_tick,
            ..Schedule::immediate()
        }
    }

    /// Sets the relative deadline.
    #[must_use = "returns the modified schedule"]
    pub fn with_deadline(mut self, deadline_ticks: u64) -> Schedule {
        self.deadline_ticks = Some(deadline_ticks);
        self
    }

    /// Sets the priority.
    #[must_use = "returns the modified schedule"]
    pub fn with_priority(mut self, priority: Priority) -> Schedule {
        self.priority = priority;
        self
    }

    /// The absolute tick the deadline fires at, if any
    /// (`arrival + deadline`, saturating).
    pub fn deadline_tick(&self) -> Option<u64> {
        self.deadline_ticks
            .map(|d| self.arrival_tick.saturating_add(d))
    }
}

/// One estimation query: the estimator plus everything needed to run and
/// bill it. The single-graph workload runner consumes it directly; the
/// serving layer embeds it in a `ServiceRequest` next to the routing
/// coordinates.
pub struct QuerySpec {
    /// Stable query id; results are reported in id order.
    pub id: u64,
    /// The estimator to run.
    pub algorithm: Box<dyn Algorithm>,
    /// The target edge label.
    pub target: TargetLabel,
    /// Sample-size budget (API calls the estimator aims to spend).
    pub budget: usize,
    /// Hard per-query budget on charged neighbor-list calls (logical calls
    /// plus retry charges). `None` = unbudgeted.
    pub hard_budget: Option<u64>,
    /// RNG seed of this query's estimator.
    pub seed: u64,
    /// When the query arrives on the virtual clock, its deadline, and its
    /// priority. [`Schedule::immediate`] for unscheduled execution.
    pub schedule: Schedule,
}

/// What one executed query produced — the outcome core shared by
/// `WorkloadReport` (directly) and `ServiceReport`
/// (inside `ServiceStatus::Completed`).
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The query's id.
    pub id: u64,
    /// Algorithm abbreviation (Table 2).
    pub abbrev: &'static str,
    /// The estimate, or why it could not be produced (a hard budget
    /// exhausted by a hostile API is an expected outcome, not a bug).
    pub estimate: Result<f64, EstimateError>,
    /// Logical API calls the query issued (the clean-world cost).
    pub logical_calls: u64,
    /// Extra billable attempts its misses cost (retries + extra pages) —
    /// what the hostile API added on top.
    pub retry_charges: u64,
    /// Realized backend attempts (first attempts + pages + retries).
    pub backend_attempts: u64,
    /// Rate-limit rejections the query's fetches absorbed.
    pub rate_limited: u64,
    /// Transient errors the query's fetches absorbed.
    pub transient_errors: u64,
    /// Total simulated latency ticks (attempt latencies + backoff +
    /// retry-after waits).
    pub latency_ticks: u64,
    /// Whether the hard budget ran out.
    pub budget_exhausted: bool,
    /// Outage-burst windows the query's fetches ran into.
    pub bursts: u64,
    /// Circuit-breaker trips (closed → open) on the query's stack.
    pub breaker_opens: u64,
    /// Stale cache entries served to the query during degraded windows.
    pub stale_served: u64,
}

impl QueryOutcome {
    /// Total charged API calls: logical + retry charges.
    pub fn charged_calls(&self) -> u64 {
        self.logical_calls + self.retry_charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_the_unscheduled_behavior() {
        let s = Schedule::default();
        assert_eq!(s.arrival_tick, 0);
        assert_eq!(s.deadline_ticks, None);
        assert_eq!(s.priority, Priority::Normal);
        assert_eq!(s.deadline_tick(), None);
    }

    #[test]
    fn deadline_tick_is_absolute_and_saturating() {
        let s = Schedule::at(100).with_deadline(40);
        assert_eq!(s.deadline_tick(), Some(140));
        let zero = Schedule::at(7).with_deadline(0);
        assert_eq!(zero.deadline_tick(), Some(7), "deadline 0 fires at arrival");
        let huge = Schedule::at(u64::MAX).with_deadline(u64::MAX);
        assert_eq!(huge.deadline_tick(), Some(u64::MAX));
    }

    #[test]
    fn priority_ranks_order_high_first() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.name(), "high");
    }
}
