//! Random-walk estimation of `|V|` and `|E|` — the paper's prior-knowledge
//! assumption made self-contained.
//!
//! The problem definition (§3) assumes `|V|` and `|E|` are known, noting
//! that otherwise "some existing methods such as \[11\] and \[23\] could be
//! used to estimate" them. This module implements those companions so the
//! library works end-to-end on an OSN whose size is *not* published:
//!
//! * `|V|`: the collision estimator of Katzir, Liberty & Somekh (WWW 2011,
//!   the paper's \[13\]; also used by \[11\]). From `k` stationary samples
//!   with degrees `d₁…d_k` and `C` = number of sample pairs that hit the
//!   same node:
//!   `n̂ = (Σ dᵢ)(Σ 1/dᵢ) / (2C)`
//!   (both factors concentrate: `E[Σd·Σ1/d] ≈ k²·n·Σd²/(2|E|)²` and
//!   `E[2C] ≈ k²·Σd²/(2|E|)²`).
//! * `|E|`: from the same samples, `Ê = k·Σ dᵢ / (4C)` (same collision
//!   normalization applied to the degree mean `E[d] = Σd²/2|E|`).
//!
//! Both need at least one collision; the walk length required scales with
//! `2|E|/√(Σd²)` (a birthday bound), so rapid growth of `C` on skewed
//! graphs makes these practical — hubs collide quickly.

use std::collections::HashMap;

use labelcount_graph::NodeId;
use labelcount_osn::OsnApi;
use labelcount_walk::{SimpleWalk, Walker};
use rand::Rng;

use crate::error::EstimateError;
use crate::neighbor_sample::random_walk_start;

/// Output of [`estimate_graph_size`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeEstimate {
    /// Estimated number of users `n̂`.
    pub num_nodes: f64,
    /// Estimated number of friendships `Ê`.
    pub num_edges: f64,
    /// Node collisions observed among the samples (reliability indicator:
    /// estimates with few collisions are noisy).
    pub collisions: usize,
    /// Number of walk samples used.
    pub samples: usize,
}

/// Estimates `|V|` and `|E|` from a single stationary random walk of `k`
/// samples (after `burn_in` steps).
///
/// Returns [`EstimateError::ZeroSampleSize`] for `k == 0` and an estimate
/// with `collisions == 0` (and infinite sizes) when no collision occurred
/// — callers should then increase `k`.
pub fn estimate_graph_size(
    osn: &dyn OsnApi,
    k: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<SizeEstimate, EstimateError> {
    if k == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);

    let mut sum_d = 0.0f64;
    let mut sum_inv_d = 0.0f64;
    let mut seen: HashMap<NodeId, usize> = HashMap::with_capacity(k);
    let mut collisions = 0usize;
    for _ in 0..k {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: seen.len(),
            });
        }
        let u = walk.step(osn, rng);
        let d = osn.degree(u).max(1) as f64;
        sum_d += d;
        sum_inv_d += 1.0 / d;
        // Each repeat visit collides with every earlier visit of the same
        // node: a node seen m times contributes C(m, 2) pairs.
        let m = seen.entry(u).or_insert(0);
        collisions += *m;
        *m += 1;
    }

    let (num_nodes, num_edges) = if collisions == 0 {
        (f64::INFINITY, f64::INFINITY)
    } else {
        (
            sum_d * sum_inv_d / (2.0 * collisions as f64),
            k as f64 * sum_d / (4.0 * collisions as f64),
        )
    };
    Ok(SizeEstimate {
        num_nodes,
        num_edges,
        collisions,
        samples: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_estimated_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(2_000, 5, &mut rng);
        let reps = 40;
        let mut n_sum = 0.0;
        let mut e_sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            let est = estimate_graph_size(&osn, 2_500, 100, &mut rng).unwrap();
            assert!(est.collisions > 0, "walk of 2500 must collide on 2k nodes");
            n_sum += est.num_nodes;
            e_sum += est.num_edges;
        }
        let n_mean = n_sum / reps as f64;
        let e_mean = e_sum / reps as f64;
        let n_rel = (n_mean - g.num_nodes() as f64).abs() / g.num_nodes() as f64;
        let e_rel = (e_mean - g.num_edges() as f64).abs() / g.num_edges() as f64;
        assert!(n_rel < 0.15, "n̂ mean {n_mean} vs {}", g.num_nodes());
        assert!(e_rel < 0.15, "Ê mean {e_mean} vs {}", g.num_edges());
    }

    #[test]
    fn no_collision_reports_infinity() {
        // A huge sparse-sample regime: 10 samples on 5k nodes rarely
        // collide; when they don't, the estimate must be explicit about it.
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(5_000, 3, &mut rng);
        let osn = SimulatedOsn::new(&g);
        let est = estimate_graph_size(&osn, 10, 100, &mut rng).unwrap();
        if est.collisions == 0 {
            assert!(est.num_nodes.is_infinite());
            assert!(est.num_edges.is_infinite());
        }
        assert_eq!(est.samples, 10);
    }

    #[test]
    fn zero_samples_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(100, 3, &mut rng);
        let osn = SimulatedOsn::new(&g);
        assert!(matches!(
            estimate_graph_size(&osn, 0, 10, &mut rng),
            Err(EstimateError::ZeroSampleSize)
        ));
    }

    #[test]
    fn repeat_visits_count_pairwise_collisions() {
        // A 2-node path: the walk alternates, so k samples visit each node
        // ~k/2 times, giving ~2·C(k/2,2) collisions.
        let mut b = labelcount_graph::GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let est = estimate_graph_size(&osn, 10, 0, &mut rng).unwrap();
        // 10 samples over 2 nodes: 5 visits each ⇒ 2 × C(5,2) = 20.
        assert_eq!(est.collisions, 20);
    }
}
