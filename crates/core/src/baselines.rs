//! Baseline adaptations (paper §5.1): node-count estimators of Li et al.
//! (ICDE 2015) run on the implicit line graph `G'`.
//!
//! The transformation: each node of `G'` is an edge of `G`, two nodes of
//! `G'` are adjacent iff their edges share an endpoint. Target edges of `G`
//! are exactly target nodes of `G'`, so any unbiased estimator of the
//! *relative count* of target nodes, multiplied by `|H| = |E|`, estimates
//! `F`. Five estimators are adapted:
//!
//! | Abbrev   | walk on `G'`          | stationary dist.      | correction            |
//! |----------|-----------------------|-----------------------|-----------------------|
//! | EX-RW    | simple                | `∝ d'(e)`             | weights `1/d'(e)`     |
//! | EX-MHRW  | Metropolis–Hastings   | uniform               | none                  |
//! | EX-MDRW  | maximum-degree (lazy) | uniform               | none                  |
//! | EX-RCMH  | RCMH(α)               | `∝ d'(e)^{1−α}`       | weights `d'(e)^{α−1}` |
//! | EX-GMD   | GMD(c = δ·d'_max)     | `∝ max(d'(e), c)`     | weights `1/max(d',c)` |

use labelcount_graph::TargetLabel;
use labelcount_osn::{LineGraphView, LineNode, OsnApi};
use labelcount_walk::{
    GmdWalk, MaxDegreeWalk, MetropolisHastingsWalk, RcmhWalk, SimpleWalk, Walker,
};
use rand::RngCore;

use crate::algorithm::{Algorithm, RunConfig};
use crate::error::EstimateError;

/// A line-graph view over any restricted-access OSN handle.
type Lg<'a> = LineGraphView<'a, dyn OsnApi + 'a>;

/// One observed line node: target flag and line degree.
struct LineSample {
    is_target: bool,
    degree: usize,
}

/// Runs `walker` on the line graph under an API-call budget (burn-in is
/// budget-free, as for the proposed samplers), recording target flags and
/// line degrees. Each line-graph step costs several underlying calls
/// (endpoint neighbor lists, proposal degrees, endpoint profiles), so the
/// baselines collect fewer samples per budget than NeighborSample — the
/// price of the `G'` transformation.
fn collect_line_samples<W>(
    lg: &Lg<'_>,
    mut walker: W,
    target: TargetLabel,
    budget: usize,
    burn_in: usize,
    rng: &mut dyn RngCore,
) -> Result<Vec<LineSample>, EstimateError>
where
    W: for<'a> Walker<Lg<'a>>,
{
    if budget == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    walker.burn_in(lg, burn_in, rng);
    let spent0 = lg.api().api_calls();
    let mut samples = Vec::new();
    loop {
        if lg.api().budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: samples.len(),
            });
        }
        let e = walker.step(lg, rng);
        samples.push(LineSample {
            is_target: lg.is_target(e, target),
            degree: lg.degree(e),
        });
        if (lg.api().api_calls() - spent0) as usize >= budget {
            break;
        }
    }
    Ok(samples)
}

/// Guards against OSNs where the line-graph walk cannot start.
fn check_nonempty(osn: &dyn OsnApi) -> Result<(), EstimateError> {
    if osn.num_nodes() == 0 || osn.num_edges() == 0 {
        Err(EstimateError::EmptyGraph)
    } else {
        Ok(())
    }
}

/// Weighted relative-count estimate scaled to a count:
/// `F̂ = |E| · Σ I(eᵢ)·wᵢ / Σ wᵢ`.
fn weighted_estimate(samples: &[LineSample], w: impl Fn(&LineSample) -> f64, e: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for s in samples {
        let wi = w(s);
        den += wi;
        if s.is_target {
            num += wi;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        e as f64 * num / den
    }
}

/// EX-RW: simple walk on `G'` + re-weighted estimator (weights `1/d'`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExRw;

impl Algorithm for ExRw {
    fn abbrev(&self) -> &'static str {
        "EX-RW"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        check_nonempty(osn)?;
        let lg = LineGraphView::new(osn);
        let start = lg.random_start(rng);
        let samples = collect_line_samples(
            &lg,
            SimpleWalk::<LineNode>::new(start),
            target,
            budget,
            cfg.burn_in,
            rng,
        )?;
        Ok(weighted_estimate(
            &samples,
            |s| {
                if s.degree == 0 {
                    0.0
                } else {
                    1.0 / s.degree as f64
                }
            },
            osn.num_edges(),
        ))
    }
}

/// EX-MHRW: Metropolis–Hastings walk on `G'`; uniform stationary
/// distribution, so the plain hit fraction scales to `F̂`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExMhrw;

impl Algorithm for ExMhrw {
    fn abbrev(&self) -> &'static str {
        "EX-MHRW"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        check_nonempty(osn)?;
        let lg = LineGraphView::new(osn);
        let start = lg.random_start(rng);
        let samples = collect_line_samples(
            &lg,
            MetropolisHastingsWalk::<LineNode>::new(start),
            target,
            budget,
            cfg.burn_in,
            rng,
        )?;
        let hits = samples.iter().filter(|s| s.is_target).count();
        Ok(osn.num_edges() as f64 * hits as f64 / samples.len() as f64)
    }
}

/// EX-MDRW: maximum-degree (lazy) walk on `G'`; uniform stationary
/// distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExMdrw;

impl Algorithm for ExMdrw {
    fn abbrev(&self) -> &'static str {
        "EX-MDRW"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        check_nonempty(osn)?;
        let lg = LineGraphView::new(osn);
        let start = lg.random_start(rng);
        let walker = MaxDegreeWalk::<LineNode>::with_bound(start, lg.max_degree_bound());
        let samples = collect_line_samples(&lg, walker, target, budget, cfg.burn_in, rng)?;
        let hits = samples.iter().filter(|s| s.is_target).count();
        Ok(osn.num_edges() as f64 * hits as f64 / samples.len() as f64)
    }
}

/// EX-RCMH: rejection-controlled MH walk on `G'` with exponent `α`;
/// stationary `∝ d'^{1−α}`, corrected with weights `d'^{α−1}`.
#[derive(Clone, Copy, Debug)]
pub struct ExRcmh {
    alpha: f64,
}

impl ExRcmh {
    /// Creates the baseline with control parameter `alpha ∈ [0, 1]`
    /// (Li et al. recommend `[0, 0.3]`).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        ExRcmh { alpha }
    }

    /// The control parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Algorithm for ExRcmh {
    fn abbrev(&self) -> &'static str {
        "EX-RCMH"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        check_nonempty(osn)?;
        let lg = LineGraphView::new(osn);
        let start = lg.random_start(rng);
        let walker = RcmhWalk::<LineNode>::new(start, self.alpha);
        let alpha = self.alpha;
        let samples = collect_line_samples(&lg, walker, target, budget, cfg.burn_in, rng)?;
        Ok(weighted_estimate(
            &samples,
            |s| {
                if s.degree == 0 {
                    0.0
                } else {
                    (s.degree as f64).powf(alpha - 1.0)
                }
            },
            osn.num_edges(),
        ))
    }
}

/// EX-GMD: general maximum-degree walk on `G'` with virtual degree
/// `c = δ · d'_max`; stationary `∝ max(d', c)`, corrected with weights
/// `1/max(d', c)`.
#[derive(Clone, Copy, Debug)]
pub struct ExGmd {
    delta: f64,
}

impl ExGmd {
    /// Creates the baseline with `delta ∈ (0, 1]` (Li et al. recommend
    /// `[0.3, 0.7]`).
    pub fn new(delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "delta must be in (0, 1], got {delta}"
        );
        ExGmd { delta }
    }

    /// The control parameter.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl Algorithm for ExGmd {
    fn abbrev(&self) -> &'static str {
        "EX-GMD"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        check_nonempty(osn)?;
        let lg = LineGraphView::new(osn);
        let start = lg.random_start(rng);
        let c = ((lg.max_degree_bound() as f64 * self.delta).round() as usize).max(1);
        let walker = GmdWalk::<LineNode>::new(start, c);
        let samples = collect_line_samples(&lg, walker, target, budget, cfg.burn_in, rng)?;
        Ok(weighted_estimate(
            &samples,
            |s| 1.0 / s.degree.max(c) as f64,
            osn.num_edges(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::algorithms;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{GraphBuilder, GroundTruth, LabelId, LabeledGraph, NodeId};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_ba(seed: u64, n: usize, m: usize, p1: f64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng);
        let mut labels = vec![Vec::new(); n];
        assign_binary_labels(&mut labels, p1, &mut rng);
        with_labels(&g, &labels)
    }

    fn target() -> TargetLabel {
        TargetLabel::new(LabelId(1), LabelId(2))
    }

    fn mean_estimate(
        alg: &dyn Algorithm,
        g: &LabeledGraph,
        k: usize,
        reps: usize,
        seed: u64,
    ) -> f64 {
        let cfg = RunConfig {
            burn_in: 150,
            thinning_frac: 0.025,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(g);
            sum += alg.estimate(&osn, target(), k, &cfg, &mut rng).unwrap();
        }
        sum / reps as f64
    }

    #[test]
    fn all_five_baselines_approximately_unbiased() {
        let g = labeled_ba(41, 300, 3, 0.4);
        let gt = GroundTruth::compute(&g, target());
        assert!(gt.f > 0);
        for alg in algorithms::baselines(0.2, 0.5) {
            let mean = mean_estimate(alg.as_ref(), &g, 400, 60, 42);
            let rel = (mean - gt.f as f64).abs() / gt.f as f64;
            assert!(
                rel < 0.25,
                "{}: mean {mean} vs F {} (rel {rel})",
                alg.abbrev(),
                gt.f
            );
        }
    }

    #[test]
    fn uniform_walk_baselines_exact_on_all_target_graph() {
        // Cycle where all nodes have both labels: every edge is a target
        // edge, so the hit fraction is exactly 1 and EX-MHRW/EX-MDRW
        // return exactly |E|.
        let mut b = GraphBuilder::new(6);
        for i in 0..6u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 6));
            b.set_labels(NodeId(i), &[LabelId(1), LabelId(2)]);
        }
        let g = b.build();
        let cfg = RunConfig {
            burn_in: 30,
            thinning_frac: 0.025,
        };
        let mut rng = StdRng::seed_from_u64(43);
        let osn = SimulatedOsn::new(&g);
        for alg in [&ExMhrw as &dyn Algorithm, &ExMdrw] {
            let est = alg.estimate(&osn, target(), 60, &cfg, &mut rng).unwrap();
            assert_eq!(est, g.num_edges() as f64, "{}", alg.abbrev());
        }
    }

    #[test]
    fn zero_target_edges_estimates_zero() {
        let g = labeled_ba(44, 150, 3, 1.0);
        let cfg = RunConfig::default();
        let mut rng = StdRng::seed_from_u64(45);
        let osn = SimulatedOsn::new(&g);
        for alg in algorithms::baselines(0.2, 0.5) {
            let est = alg.estimate(&osn, target(), 100, &cfg, &mut rng).unwrap();
            assert_eq!(est, 0.0, "{}", alg.abbrev());
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new(0).build();
        let osn = SimulatedOsn::new(&g);
        let cfg = RunConfig::default();
        let mut rng = StdRng::seed_from_u64(46);
        for alg in algorithms::baselines(0.2, 0.5) {
            assert_eq!(
                alg.estimate(&osn, target(), 10, &cfg, &mut rng)
                    .unwrap_err(),
                EstimateError::EmptyGraph,
                "{}",
                alg.abbrev()
            );
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = labeled_ba(47, 100, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        osn.set_budget(50);
        let cfg = RunConfig {
            burn_in: 10,
            thinning_frac: 0.025,
        };
        let mut rng = StdRng::seed_from_u64(48);
        match ExRw.estimate(&osn, target(), 10_000, &cfg, &mut rng) {
            Err(EstimateError::BudgetExhausted { .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rcmh_invalid_alpha() {
        ExRcmh::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn gmd_invalid_delta() {
        ExGmd::new(1.2);
    }
}
