//! Error type shared by all estimators.

/// Why an estimation run could not produce an estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateError {
    /// The OSN has no users or no friendships, so neither sampler can walk.
    EmptyGraph,
    /// A requested sample size of zero.
    ZeroSampleSize,
    /// The API-call budget of the [`labelcount_osn::SimulatedOsn`] ran out
    /// before the requested number of samples was collected. Contains the
    /// number of samples collected before exhaustion.
    BudgetExhausted {
        /// Samples collected before the budget ran out.
        collected: usize,
    },
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::EmptyGraph => write!(f, "the OSN has no nodes or no edges"),
            EstimateError::ZeroSampleSize => write!(f, "sample size k must be positive"),
            EstimateError::BudgetExhausted { collected } => {
                write!(f, "API budget exhausted after {collected} samples")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EstimateError::EmptyGraph.to_string().contains("no nodes"));
        assert!(EstimateError::ZeroSampleSize
            .to_string()
            .contains("positive"));
        let e = EstimateError::BudgetExhausted { collected: 7 };
        assert!(e.to_string().contains('7'));
    }
}
