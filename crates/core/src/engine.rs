//! The concurrent query engine: one graph, one shared cache, many
//! estimation queries.
//!
//! [`Engine`] owns a [`CachedOsn`] over a pure, `Sync`
//! [`GraphOsn`] backend and serves label-count estimation queries against
//! it. Each query runs in its own [`OsnSession`] (per-query logical-call
//! accounting and budget), so queries never corrupt each other's stopping
//! rules while sharing every cached neighbor list and label set.
//!
//! [`Engine::estimate_replicated`] fans `R` independent replicates across
//! worker threads via [`labelcount_stats::replicate()`]: replicate `i`
//! always receives the RNG seed
//! [`labelcount_stats::replication_seed`]`(base_seed, i)`, so the results
//! are **bit-identical to the serial loop** regardless of thread count —
//! the cache only changes *where* bytes come from, never *which* bytes a
//! query sees.

use std::marker::PhantomData;

use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{CacheConfig, CachedOsn, CallStats, GraphOsn, OsnBackend, OsnSession};
use labelcount_stats::replicate;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algorithm::{Algorithm, RunConfig};
use crate::error::EstimateError;

/// Per-replicate execution limits for the engine's cooperative yield
/// points.
///
/// Estimators already poll `OsnApi::budget_exhausted` at every step and
/// replicate boundary and bail with
/// [`EstimateError::BudgetExhausted`] carrying whatever they collected —
/// that is the engine's cooperative cancellation hook. A `StepBudget`
/// arms those existing yield points on every replicate's session:
///
/// * [`StepBudget::calls_per_step`] caps *charged neighbor-list calls*
///   (logical calls + retry charges) per replicate;
/// * [`StepBudget::ticks_per_step`] caps *simulated latency ticks* per
///   replicate — the hook the deadline scheduler uses to slice query
///   execution on the virtual clock.
///
/// Determinism: the limits are fixed per replicate (never derived from
/// execution order or timing), so a budgeted run is bit-identical at any
/// thread count, exactly like an unbudgeted one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepBudget {
    /// Max charged calls per replicate (`None` = uncapped).
    pub calls_per_step: Option<u64>,
    /// Max simulated latency ticks per replicate (`None` = uncapped).
    pub ticks_per_step: Option<u64>,
}

impl StepBudget {
    /// No limits — the pre-existing `estimate_replicated` behavior.
    pub fn unbounded() -> StepBudget {
        StepBudget::default()
    }

    /// Caps charged calls per replicate.
    #[must_use = "returns the modified budget"]
    pub fn with_calls(mut self, calls: u64) -> StepBudget {
        self.calls_per_step = Some(calls);
        self
    }

    /// Caps simulated latency ticks per replicate.
    #[must_use = "returns the modified budget"]
    pub fn with_ticks(mut self, ticks: u64) -> StepBudget {
        self.ticks_per_step = Some(ticks);
        self
    }

    /// Arms the limits on a session: after this, the session's
    /// `budget_exhausted` answer — the estimators' cooperative yield
    /// point — reflects both caps.
    pub fn arm<B: labelcount_osn::OsnBackend>(&self, session: &OsnSession<'_, B>) {
        if let Some(calls) = self.calls_per_step {
            session.set_budget(calls);
        }
        if let Some(ticks) = self.ticks_per_step {
            session.set_tick_ceiling(ticks);
        }
    }
}

/// A query engine serving many estimation queries over one graph through
/// a shared thread-safe cache.
///
/// ```
/// use labelcount_core::{Engine, NsHansenHurwitz, RunConfig};
/// use labelcount_graph::gen::barabasi_albert;
/// use labelcount_graph::labels::{assign_binary_labels, with_labels};
/// use labelcount_graph::TargetLabel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = barabasi_albert(300, 3, &mut rng);
/// let mut labels = vec![Vec::new(); g.num_nodes()];
/// assign_binary_labels(&mut labels, 0.5, &mut rng);
/// let g = with_labels(&g, &labels);
///
/// let engine = Engine::new(&g);
/// let target = TargetLabel::new(1.into(), 2.into());
/// let cfg = RunConfig { burn_in: 50, thinning_frac: 0.0 };
/// // 8 replicates over 4 threads — bit-identical to threads = 1.
/// let est = engine.estimate_replicated(&NsHansenHurwitz, target, 200, &cfg, 42, 8, 4);
/// assert_eq!(est.len(), 8);
/// assert!(engine.stats().misses() <= engine.stats().logical_calls());
/// ```
/// The backend defaults to the in-RAM [`GraphOsn`] view — `Engine<'g>`
/// reads exactly as before — but any `Sync` [`OsnBackend`] slots in via
/// [`Engine::on_backend`]: the out-of-core `labelcount_osn::PagedGraphOsn`
/// runs the same query stack with residency bounded by its buffer pool.
pub struct Engine<'g, B: OsnBackend + Sync = GraphOsn<'g>> {
    cache: CachedOsn<B>,
    /// The default backend borrows the graph for `'g`; non-default
    /// backends own their storage and leave the lifetime vestigial.
    _graph: PhantomData<&'g ()>,
}

impl<'g> Engine<'g> {
    /// Builds an engine with an unbounded cache — every distinct neighbor
    /// list and label set is fetched from the graph exactly once.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        Engine::on_backend(GraphOsn::new(graph))
    }

    /// Builds an engine with explicit cache sizing (bounded deployments
    /// trade hit rate for memory).
    pub fn with_cache_config(graph: &'g LabeledGraph, cfg: CacheConfig) -> Self {
        Engine::on_backend_with_config(GraphOsn::new(graph), cfg)
    }

    /// The graph being served.
    pub fn graph(&self) -> &'g LabeledGraph {
        self.cache.backend().ground_truth_graph()
    }
}

impl<'g, B: OsnBackend + Sync> Engine<'g, B> {
    /// Builds an engine over an arbitrary backend with an unbounded cache.
    pub fn on_backend(backend: B) -> Self {
        Engine {
            cache: CachedOsn::new(backend),
            _graph: PhantomData,
        }
    }

    /// Builds an engine over an arbitrary backend with explicit cache
    /// sizing. An out-of-core backend typically pairs with a *bounded*
    /// cache, so total residency (pool frames + L2 entries) stays capped.
    pub fn on_backend_with_config(backend: B, cfg: CacheConfig) -> Self {
        Engine {
            cache: CachedOsn::with_config(backend, cfg),
            _graph: PhantomData,
        }
    }

    /// The backend under the shared cache.
    pub fn backend(&self) -> &B {
        self.cache.backend()
    }

    /// Opens a raw query session against the shared cache (for callers
    /// that drive an [`Algorithm`] — or a walk — manually).
    pub fn session(&self) -> OsnSession<'_, B> {
        self.cache.session()
    }

    /// Runs one estimation query with an explicit RNG seed.
    pub fn estimate(
        &self,
        alg: &dyn Algorithm,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        seed: u64,
    ) -> Result<f64, EstimateError> {
        let session = self.cache.session();
        let mut rng = StdRng::seed_from_u64(seed);
        alg.estimate(&session, target, budget, cfg, &mut rng)
    }

    /// Runs `reps` independent replicates of one query across up to
    /// `threads` worker threads, returning results in replication order.
    ///
    /// Replicate `i` gets its own session and an RNG seeded with
    /// [`labelcount_stats::replication_seed`]`(base_seed, i)`, so the
    /// output is bit-identical for every thread count (`threads = 1` *is*
    /// the serial loop). All replicates share the cache: the first visit
    /// to a node pays the backend fetch, every later visit — by any
    /// replicate on any thread — is a hit.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm::estimate plus the replication axes
    pub fn estimate_replicated(
        &self,
        alg: &dyn Algorithm,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        base_seed: u64,
        reps: usize,
        threads: usize,
    ) -> Vec<Result<f64, EstimateError>> {
        self.estimate_replicated_budgeted(
            alg,
            target,
            budget,
            cfg,
            base_seed,
            reps,
            threads,
            StepBudget::unbounded(),
        )
    }

    /// [`Engine::estimate_replicated`] with a [`StepBudget`] armed on every
    /// replicate's session: replicates that exhaust a cap yield
    /// cooperatively at their next step boundary with
    /// [`EstimateError::BudgetExhausted`] (carrying the partial sample
    /// count). Limits are per replicate and fixed up front, so the result
    /// vector stays bit-identical at any thread count.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm::estimate plus the replication axes
    pub fn estimate_replicated_budgeted(
        &self,
        alg: &dyn Algorithm,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        base_seed: u64,
        reps: usize,
        threads: usize,
        step: StepBudget,
    ) -> Vec<Result<f64, EstimateError>> {
        replicate(reps, threads, base_seed, |_i, seed| {
            let session = self.cache.session();
            step.arm(&session);
            let mut rng = StdRng::seed_from_u64(seed);
            alg.estimate(&session, target, budget, cfg, &mut rng)
        })
    }

    /// Serves a [`Workload`](crate::Workload) of independent queries over
    /// this engine's graph on up to `workers` threads.
    ///
    /// Unlike [`Engine::estimate_replicated`] (replicates of one query
    /// through the engine's *shared* cache), a workload gives every query
    /// its **own** cache-plus-fault-model stack, so per-query budgets and
    /// retry charges are attributable and the report is bit-identical at
    /// any worker count even against a faulty backend. The engine's shared
    /// cache and its [`CallStats`] are untouched by workload runs.
    pub fn run_workload(
        &self,
        workload: &crate::Workload,
        workers: usize,
    ) -> crate::WorkloadReport {
        crate::workload::run_workload_on(self.backend(), workload, workers)
    }

    /// [`Engine::run_workload`] with a caller-owned progress tracker for
    /// anytime partial estimates.
    pub fn run_workload_observed(
        &self,
        workload: &crate::Workload,
        workers: usize,
        progress: &crate::WorkloadProgress,
    ) -> crate::WorkloadReport {
        crate::workload::run_workload_observed_on(self.backend(), workload, workers, progress)
    }

    /// Shared-cache call accounting aggregated over every query served so
    /// far: logical calls vs backend misses (the paper's distinct-call
    /// metric).
    pub fn stats(&self) -> CallStats {
        self.cache.stats()
    }

    /// Resets the call accounting (cached entries are kept warm).
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
    }

    /// Drops every cached entry, returning the engine to a cold state.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::algorithms;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{LabeledGraph, TargetLabel};
    use labelcount_osn::SimulatedOsn;
    use labelcount_stats::replication_seed;

    fn fixture(seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(250, 3, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.4, &mut rng);
        with_labels(&g, &labels)
    }

    fn target() -> TargetLabel {
        TargetLabel::new(1.into(), 2.into())
    }

    fn cfg() -> RunConfig {
        RunConfig {
            burn_in: 40,
            thinning_frac: 0.0,
        }
    }

    #[test]
    fn engine_estimate_matches_uncached_simulation() {
        let g = fixture(3);
        let engine = Engine::new(&g);
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let seed = 100 + ai as u64;
            let via_engine = engine
                .estimate(alg.as_ref(), target(), 150, &cfg(), seed)
                .unwrap();
            let osn = SimulatedOsn::new(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let direct = alg.estimate(&osn, target(), 150, &cfg(), &mut rng).unwrap();
            assert_eq!(
                via_engine.to_bits(),
                direct.to_bits(),
                "{} diverged through the engine cache",
                alg.abbrev()
            );
        }
    }

    #[test]
    fn replicated_matches_manual_serial_loop() {
        let g = fixture(5);
        let engine = Engine::new(&g);
        let alg = crate::NsHansenHurwitz;
        let reps = 6;
        let base = 99;
        let parallel = engine.estimate_replicated(&alg, target(), 120, &cfg(), base, reps, 4);
        let manual: Vec<f64> = (0..reps)
            .map(|i| {
                engine
                    .estimate(
                        &alg,
                        target(),
                        120,
                        &cfg(),
                        replication_seed(base, i as u64),
                    )
                    .unwrap()
            })
            .collect();
        for (p, m) in parallel.iter().zip(&manual) {
            assert_eq!(p.as_ref().unwrap().to_bits(), m.to_bits());
        }
    }

    #[test]
    fn unbounded_step_budget_is_the_plain_replicated_path() {
        let g = fixture(5);
        let engine = Engine::new(&g);
        let alg = crate::NsHansenHurwitz;
        let plain = engine.estimate_replicated(&alg, target(), 120, &cfg(), 7, 4, 2);
        let budgeted = engine.estimate_replicated_budgeted(
            &alg,
            target(),
            120,
            &cfg(),
            7,
            4,
            2,
            StepBudget::unbounded(),
        );
        for (p, b) in plain.iter().zip(&budgeted) {
            assert_eq!(p.as_ref().unwrap().to_bits(), b.as_ref().unwrap().to_bits());
        }
    }

    #[test]
    fn call_capped_replicates_yield_cooperatively_and_deterministically() {
        let g = fixture(6);
        let engine = Engine::new(&g);
        let alg = crate::NsHansenHurwitz;
        // Far below what a 200-call sample needs: every replicate must
        // yield at a step boundary instead of completing.
        let step = StepBudget::unbounded().with_calls(25);
        let serial =
            engine.estimate_replicated_budgeted(&alg, target(), 200, &cfg(), 3, 6, 1, step);
        for r in &serial {
            assert!(
                matches!(r, Err(EstimateError::BudgetExhausted { .. })),
                "a 25-call cap must exhaust, got {r:?}"
            );
        }
        // Caps are per replicate and order-free: bit-identical at any
        // thread count (the cooperative yield point is the session's own
        // budget answer, not shared state).
        for threads in [2usize, 4] {
            let parallel = engine.estimate_replicated_budgeted(
                &alg,
                target(),
                200,
                &cfg(),
                3,
                6,
                threads,
                step,
            );
            for (s, p) in serial.iter().zip(&parallel) {
                match (s, p) {
                    (
                        Err(EstimateError::BudgetExhausted { collected: a }),
                        Err(EstimateError::BudgetExhausted { collected: b }),
                    ) => assert_eq!(a, b, "partial sample diverged at {threads} threads"),
                    other => panic!("outcome shape diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn shared_cache_reduces_backend_traffic_across_replicates() {
        let g = fixture(7);
        let engine = Engine::new(&g);
        let _ = engine.estimate_replicated(&crate::NeHansenHurwitz, target(), 200, &cfg(), 1, 8, 1);
        let stats = engine.stats();
        assert!(stats.misses() <= stats.logical_calls());
        // 8 replicates over one 250-node graph revisit nodes heavily.
        assert!(
            (stats.misses() as f64) < 0.7 * stats.logical_calls() as f64,
            "cache saved too little: {stats:?}"
        );
        // Unbounded cache: misses are bounded by distinct nodes per endpoint.
        assert!(stats.neighbor_misses <= g.num_nodes() as u64);
        assert!(stats.label_misses <= g.num_nodes() as u64);
    }

    #[test]
    fn reset_and_clear_behave() {
        let g = fixture(9);
        let engine = Engine::new(&g);
        engine
            .estimate(&crate::NsHansenHurwitz, target(), 60, &cfg(), 4)
            .unwrap();
        assert!(engine.stats().logical_calls() > 0);
        engine.reset_stats();
        assert_eq!(engine.stats().logical_calls(), 0);
        // Warm cache: a re-run has zero misses.
        engine
            .estimate(&crate::NsHansenHurwitz, target(), 60, &cfg(), 4)
            .unwrap();
        assert_eq!(engine.stats().misses(), 0);
        engine.clear_cache();
        engine.reset_stats();
        engine
            .estimate(&crate::NsHansenHurwitz, target(), 60, &cfg(), 4)
            .unwrap();
        assert!(engine.stats().misses() > 0);
    }

    #[test]
    fn graph_accessor_returns_the_served_graph() {
        let g = fixture(11);
        let engine = Engine::new(&g);
        assert_eq!(engine.graph().num_nodes(), g.num_nodes());
        assert_eq!(engine.graph().num_edges(), g.num_edges());
    }
}
