//! Random-walk estimators for label-refined wedge and triangle counts —
//! the extension the paper names as future work (§6: "it would be
//! interesting to estimate some other types of graph properties such as
//! numbers of wedges and triangles refined by users' labels").
//!
//! Both estimators follow the NeighborExploration recipe: sample nodes
//! from a stationary simple walk, and when the current node can play a
//! role in the motif, explore its neighborhood to measure the node's motif
//! count; the Hansen–Hurwitz correction `2|E|/d(u)` removes the walk's
//! degree bias.
//!
//! * **Wedges.** `W(u)` = target wedges centered at `u`, computed from
//!   three neighbor-label counters (closed form, see
//!   `labelcount_graph::motifs::wedges_at`). `E[W(Y)/π(Y)] = Σ_u W(u) = W`
//!   since each wedge has exactly one center, so
//!   `Ŵ = (1/k) Σᵢ 2|E| · W(uᵢ)/d(uᵢ)` is unbiased.
//! * **Triangles.** `T△(u)` = target triangles containing `u`, measured by
//!   testing adjacency between label-matching neighbor pairs (the same
//!   neighbor-of-neighbor API reads a crawler would issue).
//!   `Σ_u T△(u) = 3Δ`, so `Δ̂ = (1/3k) Σᵢ 2|E| · T△(uᵢ)/d(uᵢ)`.
//!
//! API cost: a wedge observation costs `O(d(u))` profile reads when `u`
//! carries the center label; a triangle observation costs up to
//! `O(d(u))` profile reads plus one neighbor-list read per label-matching
//! neighbor. Both estimators take an API-call budget like the edge
//! estimators.

use labelcount_graph::motifs::TargetTriple;
use labelcount_graph::NodeId;
use labelcount_osn::OsnApi;
use labelcount_walk::{SimpleWalk, Walker};
use rand::Rng;

use crate::error::EstimateError;
use crate::neighbor_sample::random_walk_start;

/// One motif observation at a sampled node.
#[derive(Clone, Copy, Debug)]
pub struct MotifSample {
    /// The sampled user.
    pub node: NodeId,
    /// The user's degree.
    pub degree: usize,
    /// The motif count at this node (`W(u)` or `T△(u)`).
    pub count: usize,
}

/// Counts target wedges centered at `u` through the API: one profile read
/// per neighbor (closed form over the three label counters).
fn observe_wedges(osn: &dyn OsnApi, u: NodeId, t: TargetTriple) -> usize {
    if !osn.has_label(u, t.center) {
        return 0;
    }
    let (t1, t3) = t.ends;
    let mut a = 0usize;
    let mut b = 0usize;
    let mut both = 0usize;
    for &v in osn.neighbors(u).iter() {
        let ls = osn.labels(v);
        let in_a = ls.binary_search(&t1).is_ok();
        let in_b = ls.binary_search(&t3).is_ok();
        a += in_a as usize;
        b += in_b as usize;
        both += (in_a && in_b) as usize;
    }
    if t1 == t3 {
        a * a.saturating_sub(1) / 2
    } else {
        a * b - both - both * both.saturating_sub(1) / 2
    }
}

/// Counts target triangles containing `u` through the API: profile reads
/// for all neighbors, then pairwise adjacency checks between neighbors
/// that can complete the label multiset with `u`'s labels.
fn observe_triangles(osn: &dyn OsnApi, u: NodeId, t: TargetTriple) -> usize {
    let [x, y, z] = t.sorted();
    // u must carry at least one of the three labels to be in any target
    // triangle.
    let u_labels = osn.labels(u);
    let u_any = [x, y, z].iter().any(|l| u_labels.binary_search(l).is_ok());
    if !u_any {
        return 0;
    }
    // Copy the (sorted) neighbor list, then read each neighbor's label
    // flags once.
    let neighbors: Vec<NodeId> = osn.neighbors(u).to_vec();
    let flags: Vec<(bool, bool, bool)> = neighbors
        .iter()
        .map(|&v| {
            let ls = osn.labels(v);
            (
                ls.binary_search(&x).is_ok(),
                ls.binary_search(&y).is_ok(),
                ls.binary_search(&z).is_ok(),
            )
        })
        .collect();
    let u_flags = (
        u_labels.binary_search(&x).is_ok(),
        u_labels.binary_search(&y).is_ok(),
        u_labels.binary_search(&z).is_ok(),
    );

    // For each neighbor pair that could realize the multiset together with
    // u, check adjacency with one neighbor-list read (the first of the
    // pair; the list is already local for repeat pairs).
    let assignable = |a: (bool, bool, bool), b: (bool, bool, bool), c: (bool, bool, bool)| {
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let get = |f: (bool, bool, bool), i: usize| match i {
            0 => f.0,
            1 => f.1,
            _ => f.2,
        };
        PERMS
            .iter()
            .any(|p| get(a, p[0]) && get(b, p[1]) && get(c, p[2]))
    };

    let mut count = 0usize;
    for (i, &v) in neighbors.iter().enumerate() {
        // One neighbor-list read for v, reused across all pairs (i, j).
        let v_adj = osn.neighbors(v);
        for (j, &w) in neighbors.iter().enumerate().skip(i + 1) {
            if !assignable(u_flags, flags[i], flags[j]) {
                continue;
            }
            if v_adj.binary_search(&w).is_ok() {
                count += 1;
            }
        }
    }
    count
}

/// Generic budgeted motif sampler: walks, observes `measure` at each
/// position, stops when `budget` API calls are spent.
fn sample_motifs(
    osn: &dyn OsnApi,
    budget: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
    measure: impl Fn(&dyn OsnApi, NodeId) -> usize,
) -> Result<Vec<MotifSample>, EstimateError> {
    if budget == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);
    let spent0 = osn.api_calls();

    let mut samples = Vec::new();
    loop {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: samples.len(),
            });
        }
        let u = walk.step(osn, rng);
        let degree = osn.degree(u);
        let count = measure(osn, u);
        samples.push(MotifSample {
            node: u,
            degree,
            count,
        });
        if (osn.api_calls() - spent0) as usize >= budget {
            break;
        }
    }
    Ok(samples)
}

/// Hansen–Hurwitz reduction `Σ c(uᵢ)·2|E|/d(uᵢ) / (k·share)`, where
/// `share` is how many sampled nodes see each motif (1 for wedge centers,
/// 3 for triangle corners).
fn hansen_hurwitz(samples: &[MotifSample], num_edges: usize, share: f64) -> f64 {
    let two_e = 2.0 * num_edges as f64;
    let sum: f64 = samples
        .iter()
        .map(|s| two_e * s.count as f64 / s.degree.max(1) as f64)
        .sum();
    sum / (samples.len() as f64 * share)
}

/// Estimates the number of target wedges for `t` under an API-call budget.
pub fn estimate_labeled_wedges(
    osn: &dyn OsnApi,
    t: TargetTriple,
    budget: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<f64, EstimateError> {
    let samples = sample_motifs(osn, budget, burn_in, rng, |osn, u| {
        observe_wedges(osn, u, t)
    })?;
    Ok(hansen_hurwitz(&samples, osn.num_edges(), 1.0))
}

/// Estimates the number of target triangles for `t` under an API-call
/// budget.
pub fn estimate_labeled_triangles(
    osn: &dyn OsnApi,
    t: TargetTriple,
    budget: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<f64, EstimateError> {
    let samples = sample_motifs(osn, budget, burn_in, rng, |osn, u| {
        observe_triangles(osn, u, t)
    })?;
    Ok(hansen_hurwitz(&samples, osn.num_edges(), 3.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::with_labels;
    use labelcount_graph::motifs::{
        count_labeled_triangles, count_labeled_wedges, triangles_at, wedges_at,
    };
    use labelcount_graph::{LabelId, LabeledGraph};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(400, 5, &mut rng);
        let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
            .map(|i| vec![LabelId(1 + (i % 3) as u32)])
            .collect();
        with_labels(&g, &labels)
    }

    fn triple() -> TargetTriple {
        TargetTriple::new(LabelId(1), LabelId(2), LabelId(3))
    }

    #[test]
    fn api_wedge_observation_matches_ground_truth() {
        let g = fixture(1);
        let osn = SimulatedOsn::new(&g);
        for u in g.nodes().take(60) {
            assert_eq!(
                observe_wedges(&osn, u, triple()),
                wedges_at(&g, u, triple()),
                "node {u}"
            );
        }
    }

    #[test]
    fn api_triangle_observation_matches_ground_truth() {
        let g = fixture(2);
        let osn = SimulatedOsn::new(&g);
        for u in g.nodes().take(40) {
            assert_eq!(
                observe_triangles(&osn, u, triple()),
                triangles_at(&g, u, triple()),
                "node {u}"
            );
        }
    }

    #[test]
    fn wedge_estimator_approximately_unbiased() {
        let g = fixture(3);
        let truth = count_labeled_wedges(&g, triple()) as f64;
        assert!(truth > 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let reps = 80;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += estimate_labeled_wedges(&osn, triple(), 3_000, 100, &mut rng).unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(rel < 0.1, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn triangle_estimator_approximately_unbiased() {
        let g = fixture(5);
        let truth = count_labeled_triangles(&g, triple()) as f64;
        assert!(truth > 0.0, "fixture must contain target triangles");
        let mut rng = StdRng::seed_from_u64(6);
        let reps = 80;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += estimate_labeled_triangles(&osn, triple(), 5_000, 100, &mut rng).unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(rel < 0.15, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn absent_labels_estimate_zero() {
        let g = fixture(7);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let t = TargetTriple::new(LabelId(7), LabelId(8), LabelId(9));
        assert_eq!(
            estimate_labeled_wedges(&osn, t, 500, 50, &mut rng).unwrap(),
            0.0
        );
        assert_eq!(
            estimate_labeled_triangles(&osn, t, 500, 50, &mut rng).unwrap(),
            0.0
        );
    }

    #[test]
    fn zero_budget_rejected() {
        let g = fixture(9);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(matches!(
            estimate_labeled_wedges(&osn, triple(), 0, 10, &mut rng),
            Err(EstimateError::ZeroSampleSize)
        ));
    }

    #[test]
    fn budget_limits_api_calls() {
        let g = fixture(11);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(12);
        let budget = 800usize;
        estimate_labeled_triangles(&osn, triple(), budget, 50, &mut rng).unwrap();
        let spent = osn.api_calls() as usize;
        // Burn-in (50 calls) + budget + at most one observation overshoot.
        assert!(spent >= budget);
        assert!(
            spent < budget + 50 + 4 * 400,
            "spent {spent} far beyond budget"
        );
    }
}
