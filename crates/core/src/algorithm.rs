//! The uniform algorithm interface and the paper's algorithm roster.

use labelcount_graph::TargetLabel;
use labelcount_osn::OsnApi;
use rand::RngCore;

use crate::error::EstimateError;

/// Shared run parameters (everything except the sample size, which the
/// experiments sweep).
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Burn-in steps before sampling begins — the mixing time of the walk.
    /// The paper measures `T(10⁻³)` per dataset and discards everything
    /// before it; [`labelcount_walk::mixing::default_burn_in`] provides a
    /// fallback when computing `T(ε)` is too expensive.
    pub burn_in: usize,
    /// Thinning for the Horvitz–Thompson estimators: when positive, only
    /// every `r`-th draw (`r = thinning_frac · k`) enters the HT sample
    /// set, the paper's §4.1.3/§4.2.3 strategy (after Hardiman & Katzir)
    /// for approximately independent draws. The default is the paper's
    /// `r = 2.5%·k`; without it, correlation between consecutive walk
    /// samples deflates the distinct count and biases HT downward (the
    /// thinning ablation bench demonstrates this).
    pub thinning_frac: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            burn_in: 1_000,
            thinning_frac: 0.0,
        }
    }
}

impl RunConfig {
    /// The thinning interval in walk steps for sample size `k`.
    pub fn thinning_interval(&self, k: usize) -> usize {
        ((self.thinning_frac * k as f64).round() as usize).max(1)
    }
}

/// An estimator of the number of target edges `F`, runnable against a
/// restricted-access OSN.
///
/// Object-safe so the harness can hold `Vec<Box<dyn Algorithm>>` and sweep
/// the paper's ten algorithms uniformly. `Sync + Send` so replicated
/// simulations can share one instance across worker threads (all provided
/// implementations are stateless).
pub trait Algorithm: Sync + Send {
    /// The abbreviation used in the paper's Table 2 (e.g.
    /// `"NeighborSample-HH"`, `"EX-MHRW"`).
    fn abbrev(&self) -> &'static str;

    /// Estimates `F` for `target` under an API-call `budget` (the paper's
    /// tables quote budgets as a share of `|V|`, e.g. 5%|V| API calls).
    /// Burn-in is budget-free; every neighbor-list and profile fetch after
    /// it costs one call.
    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError>;
}

/// Constructors for the paper's algorithm roster.
pub mod algorithms {
    use super::Algorithm;
    use crate::baselines::{ExGmd, ExMdrw, ExMhrw, ExRcmh, ExRw};
    use crate::neighbor_exploration::{NeHansenHurwitz, NeHorvitzThompson, NeReweighted};
    use crate::neighbor_sample::{NsHansenHurwitz, NsHorvitzThompson};

    /// The five algorithms proposed by the paper (§4).
    pub fn proposed() -> Vec<Box<dyn Algorithm>> {
        vec![
            Box::new(NsHansenHurwitz),
            Box::new(NsHorvitzThompson),
            Box::new(NeHansenHurwitz),
            Box::new(NeHorvitzThompson),
            Box::new(NeReweighted),
        ]
    }

    /// The five baseline adaptations of Li et al. (§5.1). `alpha` controls
    /// EX-RCMH (paper: `α ∈ [0, 0.3]`), `delta` controls EX-GMD (paper:
    /// `δ ∈ [0.3, 0.7]`).
    pub fn baselines(alpha: f64, delta: f64) -> Vec<Box<dyn Algorithm>> {
        vec![
            Box::new(ExMdrw),
            Box::new(ExMhrw),
            Box::new(ExRw),
            Box::new(ExRcmh::new(alpha)),
            Box::new(ExGmd::new(delta)),
        ]
    }

    /// All ten algorithms of the paper's Table 2, in the row order of the
    /// result tables.
    pub fn all_paper(alpha: f64, delta: f64) -> Vec<Box<dyn Algorithm>> {
        let mut v = proposed();
        v.extend(baselines(alpha, delta));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thinning_interval_follows_fraction() {
        let cfg = RunConfig {
            burn_in: 0,
            thinning_frac: 0.025,
        };
        assert_eq!(cfg.thinning_interval(1_000), 25);
        assert_eq!(cfg.thinning_interval(40), 1);
        assert_eq!(cfg.thinning_interval(1), 1); // never zero
        assert_eq!(cfg.thinning_interval(200), 5);
    }

    #[test]
    fn roster_matches_table2() {
        let all = algorithms::all_paper(0.2, 0.5);
        let abbrevs: Vec<&str> = all.iter().map(|a| a.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec![
                "NeighborSample-HH",
                "NeighborSample-HT",
                "NeighborExploration-HH",
                "NeighborExploration-HT",
                "NeighborExploration-RW",
                "EX-MDRW",
                "EX-MHRW",
                "EX-RW",
                "EX-RCMH",
                "EX-GMD",
            ]
        );
    }

    #[test]
    fn default_config_keeps_all_draws() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.thinning_frac, 0.0);
        assert!(cfg.burn_in > 0);
    }
}
