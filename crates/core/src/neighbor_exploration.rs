//! NeighborExploration (paper §4.2): node sampling plus neighborhood
//! exploration of label-carrying nodes.
//!
//! A single simple random walk is burned in, then each further position
//! `u` is a sample. If `u` carries one of the two target labels, all of
//! `u`'s friends are explored and `T(u)` — the number of target edges
//! incident to `u` — is recorded (Algorithm 2). Exploring only
//! label-carrying nodes is the paper's mechanism for sampling *target*
//! edges with boosted probability `Σ_{u∈Q} d(u) / 2|E|` instead of
//! `F/|E|` (§5.3), which is why NeighborExploration dominates when target
//! edges are rare.
//!
//! # API-call budgets
//!
//! Under the budgeted entry points a non-explored sample costs ~3 calls
//! (walk step + degree + profile) while an explored one costs
//! `~4 + d(u)` (one profile per friend). On abundant labels exploration
//! therefore eats the budget — exactly the regime where the paper observes
//! NeighborSample overtaking NeighborExploration (§5.2 finding 4).

use labelcount_graph::{NodeId, TargetLabel};
use labelcount_osn::OsnApi;
use labelcount_walk::{SimpleWalk, Walker};
use rand::{Rng, RngCore};
use std::collections::HashSet;

use crate::algorithm::{Algorithm, RunConfig};
use crate::error::EstimateError;
use crate::neighbor_sample::{label_flags, random_walk_start, thin_indices};

/// One sampled node with the observations the estimators need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeSample {
    /// The sampled user.
    pub node: NodeId,
    /// The user's degree `d(u)` (known from the neighbor list).
    pub degree: usize,
    /// `T(u)`: incident target edges; `0` without exploration when the
    /// user carries neither target label.
    pub t: usize,
}

/// Computes `T(u)` by exploring all of `u`'s friends: one neighbor-list
/// fetch plus one profile fetch per friend. Only called for users carrying
/// a target label.
fn explore_t(
    osn: &dyn OsnApi,
    u: NodeId,
    u_has_t1: bool,
    u_has_t2: bool,
    target: TargetLabel,
) -> usize {
    let (t1, t2) = (target.first(), target.second());
    let mut t = 0usize;
    for &v in osn.neighbors(u).iter() {
        let ls = osn.labels(v);
        let v_has_t1 = ls.binary_search(&t1).is_ok();
        let v_has_t2 = ls.binary_search(&t2).is_ok();
        if (u_has_t1 && v_has_t2) || (u_has_t2 && v_has_t1) {
            t += 1;
        }
    }
    t
}

/// Observes the walk's current node: degree, label flags, and `T(u)` if a
/// target label is present.
fn observe(osn: &dyn OsnApi, u: NodeId, target: TargetLabel) -> NodeSample {
    let degree = osn.degree(u);
    let (u_has_t1, u_has_t2) = label_flags(osn, u, target);
    let t = if u_has_t1 || u_has_t2 {
        explore_t(osn, u, u_has_t1, u_has_t2, target)
    } else {
        0
    };
    NodeSample { node: u, degree, t }
}

/// Runs the NeighborExploration process with an explicit sample count
/// (Algorithm 2 with the single-walk implementation of §4.2.2). The
/// budgeted variant used by the [`Algorithm`] impls is
/// [`run_neighbor_exploration`].
pub fn sample_nodes(
    osn: &dyn OsnApi,
    target: TargetLabel,
    k: usize,
    burn_in: usize,
    thin: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<NodeSample>, EstimateError> {
    if k == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let thin = thin.max(1);
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);

    let mut samples = Vec::with_capacity(k);
    while samples.len() < k {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: samples.len(),
            });
        }
        for _ in 0..thin {
            walk.step(osn, rng);
        }
        samples.push(observe(osn, Walker::<dyn OsnApi>::current(&walk), target));
    }
    Ok(samples)
}

/// Runs the NeighborExploration process under an API-call budget: burn-in
/// (budget-free), then walk-observe-explore until `budget` calls are
/// spent. At least one node is always observed.
pub fn run_neighbor_exploration(
    osn: &dyn OsnApi,
    target: TargetLabel,
    budget: usize,
    burn_in: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<NodeSample>, EstimateError> {
    if budget == 0 {
        return Err(EstimateError::ZeroSampleSize);
    }
    let start = random_walk_start(osn, rng)?;
    let mut walk = SimpleWalk::new(start);
    walk.burn_in(osn, burn_in, rng);
    let spent0 = osn.api_calls();

    let mut samples = Vec::new();
    loop {
        if osn.budget_exhausted() {
            return Err(EstimateError::BudgetExhausted {
                collected: samples.len(),
            });
        }
        let u = walk.step(osn, rng);
        samples.push(observe(osn, u, target));
        if (osn.api_calls() - spent0) as usize >= budget {
            break;
        }
    }
    Ok(samples)
}

/// Inclusion probability of node `u` after `k` stationary draws:
/// `Pr(u ∈ S) = 1 − (1 − d(u)/2|E|)^k` (§4.2.3).
pub fn node_inclusion_probability(degree: usize, num_edges: usize, k: usize) -> f64 {
    let pi = degree as f64 / (2.0 * num_edges as f64);
    1.0 - (1.0 - pi).powi(k as i32)
}

/// NeighborExploration with the Hansen–Hurwitz estimator (Eq. 11):
/// `F̂ = (1/k) Σᵢ |E| · T(uᵢ) / d(uᵢ)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeHansenHurwitz;

impl Algorithm for NeHansenHurwitz {
    fn abbrev(&self) -> &'static str {
        "NeighborExploration-HH"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        let samples = run_neighbor_exploration(osn, target, budget, cfg.burn_in, rng)?;
        let e = osn.num_edges() as f64;
        let sum: f64 = samples
            .iter()
            .map(|s| e * s.t as f64 / s.degree.max(1) as f64)
            .sum();
        Ok(sum / samples.len() as f64)
    }
}

/// NeighborExploration with the Horvitz–Thompson estimator (Eq. 13):
/// `F̂ = ½ Σ_{u ∈ S distinct} T(u) / (1 − (1 − d(u)/2|E|)^k)`.
///
/// With `cfg.thinning_frac > 0`, only every `r`-th draw enters the sample
/// set (§4.2.3's independence strategy) and the retained count is the `k`
/// of the inclusion probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeHorvitzThompson;

impl Algorithm for NeHorvitzThompson {
    fn abbrev(&self) -> &'static str {
        "NeighborExploration-HT"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        let samples = run_neighbor_exploration(osn, target, budget, cfg.burn_in, rng)?;
        // Two passes: the retained count must be known before the inclusion
        // probabilities; the sum runs in first-seen order so results are
        // bit-for-bit reproducible.
        let retained = thin_indices(samples.len(), cfg.thinning_frac).count();
        let mut seen: HashSet<NodeId> = HashSet::with_capacity(retained);
        let e = osn.num_edges();
        let mut sum = 0.0f64;
        for i in thin_indices(samples.len(), cfg.thinning_frac) {
            let s = &samples[i];
            if seen.insert(s.node) && s.t > 0 {
                sum += s.t as f64 / node_inclusion_probability(s.degree, e, retained);
            }
        }
        Ok(sum / 2.0)
    }
}

/// NeighborExploration with the Re-weighted estimator (Eq. 19):
/// `F̂ = |V| · Σᵢ T(uᵢ)/d(uᵢ) / (2 Σᵢ 1/d(uᵢ))` — importance sampling from
/// the walk's stationary distribution toward the uniform node
/// distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeReweighted;

impl Algorithm for NeReweighted {
    fn abbrev(&self) -> &'static str {
        "NeighborExploration-RW"
    }

    fn estimate(
        &self,
        osn: &dyn OsnApi,
        target: TargetLabel,
        budget: usize,
        cfg: &RunConfig,
        rng: &mut dyn RngCore,
    ) -> Result<f64, EstimateError> {
        let samples = run_neighbor_exploration(osn, target, budget, cfg.burn_in, rng)?;
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for s in &samples {
            let d = s.degree.max(1) as f64;
            num += s.t as f64 / d;
            den += 1.0 / d;
        }
        if den == 0.0 {
            return Ok(0.0);
        }
        Ok(osn.num_nodes() as f64 * num / (2.0 * den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{GraphBuilder, GroundTruth, LabelId, LabeledGraph};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_ba(seed: u64, n: usize, m: usize, p1: f64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng);
        let mut labels = vec![Vec::new(); n];
        assign_binary_labels(&mut labels, p1, &mut rng);
        with_labels(&g, &labels)
    }

    fn target() -> TargetLabel {
        TargetLabel::new(LabelId(1), LabelId(2))
    }

    #[test]
    fn recorded_t_matches_ground_truth() {
        let g = labeled_ba(21, 200, 3, 0.3);
        let gt = GroundTruth::compute(&g, target());
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(22);
        let samples = sample_nodes(&osn, target(), 300, 50, 1, &mut rng).unwrap();
        for s in samples {
            assert_eq!(s.degree, g.degree(s.node));
            if target().involves(&g, s.node) {
                assert_eq!(s.t, gt.t[s.node.index()], "T({})", s.node);
            } else {
                assert_eq!(s.t, 0);
            }
        }
    }

    #[test]
    fn budget_controls_sample_count() {
        let g = labeled_ba(20, 400, 3, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(19);
        // Abundant labels: every sample explored ⇒ cost ≈ 4 + d(u) ≈ 10.
        let samples = run_neighbor_exploration(&osn, target(), 600, 30, &mut rng).unwrap();
        assert!(
            samples.len() < 200,
            "exploration must eat the budget, got {} samples",
            samples.len()
        );
        assert!(!samples.is_empty());
    }

    #[test]
    fn rare_labels_explore_rarely_and_sample_cheaply() {
        // Only node labels 1 and 9 exist; label 2 never occurs, so the
        // target (1,2) still triggers exploration at label-1 nodes only.
        let mut rng = StdRng::seed_from_u64(23);
        let g = barabasi_albert(400, 3, &mut rng);
        // Label late arrivals (degree ≈ m), not nodes 0..8: the earliest BA
        // nodes are the hubs, and a degree-proportional walk would explore
        // their whole neighborhoods often enough to eat the budget.
        let mut labels = vec![vec![LabelId(9)]; g.num_nodes()];
        for slot in labels.iter_mut().rev().take(8) {
            *slot = vec![LabelId(1)];
        }
        let g = with_labels(&g, &labels);
        let osn = SimulatedOsn::new(&g);
        let budget = 600;
        let samples = run_neighbor_exploration(&osn, target(), budget, 30, &mut rng).unwrap();
        // Cheap samples (~3 calls each) ⇒ roughly budget/3 of them.
        assert!(
            samples.len() > budget / 5,
            "rare labels should give many samples, got {}",
            samples.len()
        );
    }

    #[test]
    fn hh_estimator_is_approximately_unbiased() {
        let g = labeled_ba(23, 400, 3, 0.3);
        let gt = GroundTruth::compute(&g, target());
        assert!(gt.f > 0);
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(24);
        let reps = 120;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NeHansenHurwitz
                .estimate(&osn, target(), 2_000, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        assert!(rel < 0.1, "mean {mean} vs F {}", gt.f);
    }

    #[test]
    fn ht_estimator_is_approximately_unbiased() {
        let g = labeled_ba(25, 400, 3, 0.3);
        let gt = GroundTruth::compute(&g, target());
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.025,
        };
        let mut rng = StdRng::seed_from_u64(26);
        let reps = 150;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NeHorvitzThompson
                .estimate(&osn, target(), 2_000, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        assert!(rel < 0.15, "mean {mean} vs F {}", gt.f);
    }

    #[test]
    fn rw_estimator_is_approximately_unbiased() {
        let g = labeled_ba(27, 400, 3, 0.3);
        let gt = GroundTruth::compute(&g, target());
        let cfg = RunConfig {
            burn_in: 100,
            thinning_frac: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(28);
        let reps = 150;
        let mut sum = 0.0;
        for _ in 0..reps {
            let osn = SimulatedOsn::new(&g);
            sum += NeReweighted
                .estimate(&osn, target(), 2_500, &cfg, &mut rng)
                .unwrap();
        }
        let mean = sum / reps as f64;
        let rel = (mean - gt.f as f64).abs() / gt.f as f64;
        // The ratio estimator is only asymptotically unbiased.
        assert!(rel < 0.2, "mean {mean} vs F {}", gt.f);
    }

    #[test]
    fn exploration_only_for_label_carriers() {
        // No node carries a target label: every sample costs exactly 3
        // calls (step + degree + profile), no exploration.
        let mut b = GraphBuilder::new(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        for i in 0..4u32 {
            b.add_label(NodeId(i), LabelId(9));
        }
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(29);
        let k = 50;
        let samples = sample_nodes(&osn, target(), k, 10, 1, &mut rng).unwrap();
        assert!(samples.iter().all(|s| s.t == 0));
        // Profile calls: exactly one per retained sample.
        assert_eq!(osn.stats().label_calls, k as u64);
    }

    #[test]
    fn zero_target_edges_estimates_zero() {
        let g = labeled_ba(30, 150, 3, 1.0);
        let osn = SimulatedOsn::new(&g);
        let cfg = RunConfig::default();
        let mut rng = StdRng::seed_from_u64(31);
        for alg in [
            &NeHansenHurwitz as &dyn Algorithm,
            &NeHorvitzThompson,
            &NeReweighted,
        ] {
            let est = alg.estimate(&osn, target(), 300, &cfg, &mut rng).unwrap();
            assert_eq!(est, 0.0, "{}", alg.abbrev());
        }
    }

    #[test]
    fn hard_budget_exhaustion_reported() {
        let g = labeled_ba(32, 100, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        osn.set_budget(40);
        let mut rng = StdRng::seed_from_u64(33);
        match run_neighbor_exploration(&osn, target(), 100_000, 10, &mut rng) {
            Err(EstimateError::BudgetExhausted { collected }) => {
                assert!(collected < 100_000)
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn node_inclusion_probability_sane() {
        assert!((node_inclusion_probability(20, 10, 1) - 1.0).abs() < 1e-12);
        let p = node_inclusion_probability(3, 300, 1);
        assert!((p - 3.0 / 600.0).abs() < 1e-12);
        assert!(node_inclusion_probability(3, 300, 50) > node_inclusion_probability(3, 300, 5));
    }

    #[test]
    fn zero_budget_rejected() {
        let g = labeled_ba(34, 60, 2, 0.5);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(35);
        assert_eq!(
            run_neighbor_exploration(&osn, target(), 0, 10, &mut rng).unwrap_err(),
            EstimateError::ZeroSampleSize
        );
        assert_eq!(
            sample_nodes(&osn, target(), 0, 10, 1, &mut rng).unwrap_err(),
            EstimateError::ZeroSampleSize
        );
    }
}
