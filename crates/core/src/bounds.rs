//! Sample-size bounds for `(ε, δ)`-approximation (Theorems 4.1–4.5).
//!
//! Each bound evaluates the paper's closed form from exact graph
//! quantities (`F`, `T(u)`, `d(u)`), so computing them requires full graph
//! access — they are evaluation-side results (the paper's Tables 18–22),
//! not something an estimator could compute online.
//!
//! All bounds return `f64::INFINITY` when `F = 0` (no sample size can
//! `(ε,δ)`-approximate a zero count multiplicatively).

use labelcount_graph::{GroundTruth, LabeledGraph};

/// Accuracy target: `P[(1−ε)F < F̂ < (1+ε)F] ≥ 1 − δ` (Eq. 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxParams {
    /// Relative error `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl ApproxParams {
    /// Creates the parameter pair, validating the theorem preconditions.
    ///
    /// # Panics
    /// Panics if `ε ∉ (0, 1]` or `δ ∉ (0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "need 0 < ε ≤ 1");
        assert!(delta > 0.0 && delta < 1.0, "need 0 < δ < 1");
        ApproxParams { epsilon, delta }
    }

    /// The paper's Tables 18–22 setting: `(0.1, 0.1)`.
    pub fn paper() -> Self {
        ApproxParams::new(0.1, 0.1)
    }
}

/// Theorem 4.1 — NeighborSample + Hansen–Hurwitz:
/// `k ≥ (Σ_{X∈E} |E|·I(X) − F²) / (ε²·F²·δ) = (|E|·F − F²) / (ε²·F²·δ)`.
pub fn ns_hh_bound(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> f64 {
    let f = gt.f as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    let e = g.num_edges() as f64;
    ((e * f - f * f) / (p.epsilon * p.epsilon * f * f * p.delta)).max(1.0)
}

/// Theorem 4.2 — NeighborSample + Horvitz–Thompson:
/// `k ≥ max_{e∈E} log((I(e)² + B)/B) / log(1/A(e))` with `A(e) = 1 − 1/|E|`
/// and `B = δ·ε²·F²/|E|`. Since `I ∈ {0, 1}` the max is attained at any
/// target edge.
pub fn ns_ht_bound(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> f64 {
    let f = gt.f as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    let e = g.num_edges() as f64;
    let a = 1.0 - 1.0 / e;
    let b = p.delta * p.epsilon * p.epsilon * f * f / e;
    (((1.0 + b) / b).ln() / (1.0 / a).ln()).max(1.0)
}

/// Theorem 4.3 — NeighborExploration + Hansen–Hurwitz:
/// `k ≥ (Σ_u 2|E|·T(u)²/d(u) − 4F²) / (4·ε²·F²·δ)`.
pub fn ne_hh_bound(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> f64 {
    let f = gt.f as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    let e = g.num_edges() as f64;
    let sum: f64 = g
        .nodes()
        .filter(|&u| gt.t[u.index()] > 0)
        .map(|u| {
            let t = gt.t[u.index()] as f64;
            2.0 * e * t * t / g.degree(u) as f64
        })
        .sum();
    ((sum - 4.0 * f * f) / (4.0 * p.epsilon * p.epsilon * f * f * p.delta)).max(1.0)
}

/// Theorem 4.4 — NeighborExploration + Horvitz–Thompson:
/// `k ≥ max_{y∈V} log((T(y)² + B)/B) / log(1/A(y))` with
/// `A(y) = 1 − d(y)/2|E|` and `B = 4·δ·ε²·F²/|V|`.
pub fn ne_ht_bound(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> f64 {
    let f = gt.f as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    let two_e = g.degree_sum() as f64;
    let b = 4.0 * p.delta * p.epsilon * p.epsilon * f * f / g.num_nodes() as f64;
    let mut worst: f64 = 1.0;
    for u in g.nodes() {
        let t = gt.t[u.index()] as f64;
        if t == 0.0 {
            continue; // log(B/B) = 0 contributes nothing
        }
        let a = 1.0 - g.degree(u) as f64 / two_e;
        let k = ((t * t + b) / b).ln() / (1.0 / a).ln();
        worst = worst.max(k);
    }
    worst
}

/// Theorem 4.5 — NeighborExploration + Re-weighted:
/// `k ≥ max{ 18·(Σ_y T(y)²/π_y − 4F²) / (4·ε²·F²·δ),
///           18·(Σ_y 1/π_y − |V|²) / (ε²·|V|²·δ) }`
/// with `π_y = d(y)/2|E|`.
pub fn ne_rw_bound(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> f64 {
    let f = gt.f as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    let two_e = g.degree_sum() as f64;
    let n = g.num_nodes() as f64;
    let mut sum_t = 0.0f64;
    let mut sum_inv_pi = 0.0f64;
    for u in g.nodes() {
        let d = g.degree(u) as f64;
        if d == 0.0 {
            continue;
        }
        let pi = d / two_e;
        sum_inv_pi += 1.0 / pi;
        let t = gt.t[u.index()] as f64;
        if t > 0.0 {
            sum_t += t * t / pi;
        }
    }
    let k1 = 18.0 * (sum_t - 4.0 * f * f) / (4.0 * p.epsilon * p.epsilon * f * f * p.delta);
    let k2 = 18.0 * (sum_inv_pi - n * n) / (p.epsilon * p.epsilon * n * n * p.delta);
    k1.max(k2).max(1.0)
}

/// All five bounds in the column order of the paper's Tables 18–22:
/// `[NS-HH, NS-HT, NE-HH, NE-HT, NE-RW]`.
pub fn all_bounds(g: &LabeledGraph, gt: &GroundTruth, p: ApproxParams) -> [f64; 5] {
    [
        ns_hh_bound(g, gt, p),
        ns_ht_bound(g, gt, p),
        ne_hh_bound(g, gt, p),
        ne_ht_bound(g, gt, p),
        ne_rw_bound(g, gt, p),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::labels::{assign_binary_labels, with_labels};
    use labelcount_graph::{LabelId, TargetLabel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(p1: f64) -> (labelcount_graph::LabeledGraph, GroundTruth) {
        let mut rng = StdRng::seed_from_u64(61);
        let g = barabasi_albert(500, 4, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, p1, &mut rng);
        let g = with_labels(&g, &labels);
        let gt = GroundTruth::compute(&g, TargetLabel::new(LabelId(1), LabelId(2)));
        (g, gt)
    }

    #[test]
    fn bounds_positive_and_finite_when_targets_exist() {
        let (g, gt) = fixture(0.4);
        assert!(gt.f > 0);
        for (i, b) in all_bounds(&g, &gt, ApproxParams::paper())
            .iter()
            .enumerate()
        {
            assert!(b.is_finite() && *b >= 1.0, "bound {i} = {b}");
        }
    }

    #[test]
    fn zero_f_gives_infinite_bounds() {
        let (g, gt) = fixture(1.0);
        assert_eq!(gt.f, 0);
        for b in all_bounds(&g, &gt, ApproxParams::paper()) {
            assert!(b.is_infinite());
        }
    }

    #[test]
    fn bounds_shrink_with_looser_accuracy() {
        let (g, gt) = fixture(0.4);
        let tight = ApproxParams::new(0.05, 0.05);
        let loose = ApproxParams::new(0.3, 0.3);
        for (bt, bl) in all_bounds(&g, &gt, tight)
            .iter()
            .zip(all_bounds(&g, &gt, loose))
        {
            assert!(*bt > bl, "tight {bt} must exceed loose {bl}");
        }
    }

    #[test]
    fn ns_hh_matches_closed_form() {
        let (g, gt) = fixture(0.4);
        let p = ApproxParams::paper();
        let e = g.num_edges() as f64;
        let f = gt.f as f64;
        let expect = (e * f - f * f) / (0.01 * f * f * 0.1);
        assert!((ns_hh_bound(&g, &gt, p) - expect).abs() < 1e-9);
    }

    #[test]
    fn rarer_targets_need_more_samples() {
        // Smaller F ⇒ larger relative-error bar ⇒ larger k.
        let (g1, gt1) = fixture(0.4); // frequent cross edges
        let (g2, gt2) = fixture(0.02); // rare cross edges
        assert!(gt2.f < gt1.f);
        let p = ApproxParams::paper();
        assert!(ns_hh_bound(&g2, &gt2, p) > ns_hh_bound(&g1, &gt1, p));
        assert!(ne_hh_bound(&g2, &gt2, p) > ne_hh_bound(&g1, &gt1, p));
    }

    #[test]
    fn ne_hh_bound_beats_ns_hh_for_rare_targets() {
        // The paper's Tables 18–22 consistently show the NE-HH bound below
        // the NS-HH bound on rare labels — exploration concentrates the
        // estimator.
        let (g, gt) = fixture(0.05);
        let p = ApproxParams::paper();
        assert!(ne_hh_bound(&g, &gt, p) < ns_hh_bound(&g, &gt, p));
    }

    #[test]
    #[should_panic(expected = "ε")]
    fn invalid_epsilon_rejected() {
        ApproxParams::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "δ")]
    fn invalid_delta_rejected() {
        ApproxParams::new(0.1, 1.0);
    }
}
