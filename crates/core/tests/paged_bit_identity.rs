//! The out-of-core determinism contract, end to end: every one of the
//! paper's ten Table-2 algorithms must produce **bit-identical** estimates
//! when the graph lives in a paged CSR file behind a pinned-page buffer
//! pool instead of RAM — at a frame budget of 1× the working set (constant
//! eviction pressure), 2× (some reuse), and unbounded (everything
//! resident). The pool may move bytes; it may never change them.

use labelcount_core::{algorithms, Engine, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::paged::{EvictionPolicy, PagedCsrWriter, PoolConfig};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{CacheConfig, PagedGraphOsn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(17);
    let g = barabasi_albert(300, 4, &mut rng);
    let mut labels = vec![Vec::new(); g.num_nodes()];
    assign_binary_labels(&mut labels, 0.4, &mut rng);
    with_labels(&g, &labels)
}

/// Frames a serial walk needs resident at once, at page size `page_size`:
/// one neighbor-offset page, the current node's adjacency span (the hub's
/// degree bounds it), one label-offset page, and one label-data page.
fn working_set_frames(g: &LabeledGraph, page_size: usize) -> usize {
    let max_degree = g.nodes().map(|u| g.degree(u)).max().unwrap_or(0);
    let adjacency_span = (max_degree * 4).div_ceil(page_size) + 1;
    2 + adjacency_span + 1
}

#[test]
fn all_ten_algorithms_are_bit_identical_out_of_core() {
    let g = fixture();
    let target = TargetLabel::new(1.into(), 2.into());
    let cfg = RunConfig {
        burn_in: 40,
        thinning_frac: 0.0,
    };

    // Page size 256 keeps the file many pages long at 300 nodes, so a 1×
    // working-set budget genuinely evicts instead of fitting the file.
    let page_size = 256u32;
    let path = std::env::temp_dir().join(format!(
        "labelcount_core_paged_bits_{}.paged",
        std::process::id()
    ));
    PagedCsrWriter::with_page_size(page_size)
        .write(&g, &path)
        .expect("write the fixture's paged CSR file");

    let ws = working_set_frames(&g, page_size as usize);
    let budgets: [(&str, PoolConfig); 3] = [
        (
            "1x working set",
            PoolConfig::bounded(ws, EvictionPolicy::Lru),
        ),
        (
            "2x working set",
            PoolConfig::bounded(2 * ws, EvictionPolicy::Lru),
        ),
        ("unbounded", PoolConfig::unbounded()),
    ];
    // A bounded L2 so cache hits cannot hide the pool from the walk.
    let cache = CacheConfig::builder().capacity(64).build();

    let ram = Engine::new(&g);
    for (label, pool) in budgets {
        let backend = PagedGraphOsn::open(&path, pool).expect("reopen the paged CSR file");
        let paged: Engine<'_, PagedGraphOsn> = Engine::on_backend_with_config(backend, cache);
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let seed = 4000 + ai as u64;
            let in_ram = ram
                .estimate(alg.as_ref(), target, 150, &cfg, seed)
                .expect("in-RAM estimate");
            let out_of_core = paged
                .estimate(alg.as_ref(), target, 150, &cfg, seed)
                .expect("paged estimate");
            assert_eq!(
                in_ram.to_bits(),
                out_of_core.to_bits(),
                "{} diverged out-of-core at budget {label}",
                alg.abbrev()
            );
        }
        let stats = paged.backend().paging_stats();
        assert!(stats.page_reads > 0, "{label}: the pool never read a page");
        if label == "1x working set" {
            assert!(
                stats.evictions > 0,
                "a 1x working-set budget must evict while serving ten walks"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}
