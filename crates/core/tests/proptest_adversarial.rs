//! The adversarial backend's core contract, property-tested.
//!
//! * With a **fault rate of zero** (and no pagination),
//!   `CachedOsn<AdversarialOsn<SimulatedOsn>>` is a strict pass-through:
//!   estimates, RNG streams, per-session call accounting, and the shared
//!   `CallStats` are all bit-identical to the same stack without the
//!   adversarial layer, for every Table-2 algorithm.
//! * With a **nonzero fault rate**, faults add cost but never corrupt:
//!   estimates stay bit-identical, and the session's retry charges equal
//!   exactly the decorator's extra attempts (`attempts − misses`).
//! * Retry charges count against the per-query budget, and a budgeted
//!   query can never be billed more than `budget` plus the worst-case cost
//!   of the single fetch in flight when the budget ran out.

use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{AdversarialOsn, CachedOsn, FaultConfig, OsnApi, RetryPolicy, SimulatedOsn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.5, &mut rng);
        with_labels(&g, &labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fault_rate_zero_is_bit_identical_to_the_clean_stack(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        budget in 30usize..150,
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let alg_seed = seed.wrapping_add(ai as u64);

            let clean = CachedOsn::new(SimulatedOsn::new(&g));
            let clean_session = clean.session();
            let mut rng_c = StdRng::seed_from_u64(alg_seed);
            let est_c = alg.estimate(&clean_session, target, budget, &cfg, &mut rng_c).unwrap();

            let adv = CachedOsn::new(AdversarialOsn::new(
                SimulatedOsn::new(&g),
                FaultConfig::clean(fault_seed),
                RetryPolicy::default(),
            ));
            let adv_session = adv.session();
            let mut rng_a = StdRng::seed_from_u64(alg_seed);
            let est_a = alg.estimate(&adv_session, target, budget, &cfg, &mut rng_a).unwrap();

            prop_assert_eq!(
                est_c.to_bits(), est_a.to_bits(),
                "{}: adversarial(rate 0) {} vs clean {}", alg.abbrev(), est_a, est_c
            );
            // Same draw count in the same order.
            prop_assert_eq!(rng_c.next_u64(), rng_a.next_u64(), "{}: RNG streams diverged", alg.abbrev());
            // Per-session accounting identical; a clean fault model never
            // charges retries.
            prop_assert_eq!(clean_session.api_calls(), adv_session.api_calls(), "{}", alg.abbrev());
            prop_assert_eq!(adv_session.retry_charges(), 0u64, "{}", alg.abbrev());
            drop(clean_session);
            drop(adv_session);

            // Shared CallStats identical, and the decorator's realized
            // attempts are exactly the misses (one attempt per fetch).
            let cs = clean.stats();
            let as_ = adv.stats();
            prop_assert_eq!(cs, as_, "{}: CallStats diverged", alg.abbrev());
            let fs = adv.backend().fault_stats();
            prop_assert_eq!(fs.attempts, as_.misses(), "{}", alg.abbrev());
            prop_assert_eq!(fs.retries, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(fs.latency_ticks, 0u64, "{}", alg.abbrev());
            // The wrapped simulations saw identical backend traffic.
            prop_assert_eq!(
                clean.backend().stats(),
                adv.backend().inner().stats(),
                "{}: backend traffic diverged", alg.abbrev()
            );
        }
    }

    #[test]
    fn faults_never_corrupt_estimates_and_charges_match_attempts(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        rate_pct in 1u32..60,
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        let alg = labelcount_core::NsHansenHurwitz;
        let budget = 80;

        let clean = SimulatedOsn::new(&g);
        let mut rng_c = StdRng::seed_from_u64(seed);
        let est_c = labelcount_core::Algorithm::estimate(
            &alg, &clean, target, budget, &cfg, &mut rng_c,
        ).unwrap();

        let adv = CachedOsn::new(AdversarialOsn::new(
            SimulatedOsn::new(&g),
            FaultConfig::hostile(fault_seed, rate_pct as f64 / 100.0),
            RetryPolicy::default(),
        ));
        let session = adv.session();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let est_a = labelcount_core::Algorithm::estimate(
            &alg, &session, target, budget, &cfg, &mut rng_a,
        ).unwrap();

        // Faults delay and charge — they never change the bytes, so the
        // estimate is the uncached clean run's, bit for bit.
        prop_assert_eq!(est_c.to_bits(), est_a.to_bits());

        // The session was billed exactly the decorator's extra attempts.
        let fs = adv.backend().fault_stats();
        let stats_misses = {
            drop(session);
            adv.stats().misses()
        };
        prop_assert_eq!(fs.attempts - stats_misses, fs.retries + fs.extra_pages);

        // Fault counters are consistent: every retry (and every forced
        // final success) stems from a counted rejection.
        prop_assert_eq!(fs.rate_limited + fs.transient_errors, fs.retries + fs.retries_exhausted);
    }

    #[test]
    fn retry_charges_respect_the_query_budget(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        budget in 20u64..120,
    ) {
        // A hostile API with a tight budget: the estimator stops once
        // charged calls reach the budget, and the bill can overshoot by at
        // most the cost of the single fetch in flight (all of whose
        // retries land atomically).
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 10, ..RunConfig::default() };
        let policy = RetryPolicy::default();
        let fault = FaultConfig::hostile(fault_seed, 0.5);
        let page = fault.page_size.unwrap_or(usize::MAX);
        let max_degree = g.nodes().map(|u| g.degree(u)).max().unwrap_or(0);
        let worst_fetch =
            (max_degree.div_ceil(page).max(1) as u64) * policy.max_attempts as u64;

        let adv = CachedOsn::new(AdversarialOsn::new(
            SimulatedOsn::new(&g),
            fault,
            policy,
        ));
        let session = adv.session();
        session.set_budget(budget);
        let mut rng = StdRng::seed_from_u64(seed);
        // The run may or may not finish inside the budget; either way the
        // accounting invariants below must hold.
        let outcome = labelcount_core::Algorithm::estimate(
            &labelcount_core::NsHansenHurwitz, &session, target, 10_000, &cfg, &mut rng,
        );

        let exhausted = session.budget_exhausted();
        let charges = session.retry_charges();
        if exhausted {
            prop_assert_eq!(session.budget_remaining(), Some(0u64));
            prop_assert!(
                matches!(outcome, Err(labelcount_core::EstimateError::BudgetExhausted { .. })),
                "exhausted budget must interrupt the estimator: {outcome:?}"
            );
        }
        drop(session);
        let billed = adv.stats().logical_neighbor_calls + charges;
        if exhausted {
            prop_assert!(billed >= budget, "exhaustion fired early: {billed} < {budget}");
        }
        // The estimator polls the budget once per sample; between two
        // polls it spends the (budget-free-by-contract but hard-budgeted)
        // burn-in plus a handful of fetches, each of which can cost up to
        // `worst_fetch` billed attempts against this hostile API. Beyond
        // that window the budget is a hard wall: retries can never run
        // away past it.
        let slack = (cfg.burn_in as u64 + 8) * worst_fetch;
        prop_assert!(
            billed <= budget + slack,
            "billed {billed} beyond budget {budget} + slack {slack}"
        );
    }
}
