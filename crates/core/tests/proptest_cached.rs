//! The cached access layer's core contract, property-tested: wrapping any
//! backend in a `CachedOsn` changes *where* bytes come from, never *which*
//! bytes a query sees.
//!
//! For random graphs, seeds, and every Table-2 algorithm:
//!
//! * estimates through an [`OsnSession`] over `CachedOsn<SimulatedOsn>`
//!   are **bit-identical** to the uncached `SimulatedOsn` run;
//! * the RNG streams are bit-identical too (same number of draws in the
//!   same order — checked by comparing the generators' next outputs);
//! * `CallStats` invariants hold: `misses <= logical_calls`, and with
//!   unbounded capacity the misses per endpoint equal the number of
//!   *distinct* `(node, endpoint)` requests — which the wrapped
//!   simulation's own distinct-call counters certify independently.

use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{CacheConfig, CachedOsn, OsnApi, SimulatedOsn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.5, &mut rng);
        with_labels(&g, &labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_runs_are_bit_identical_to_uncached_runs(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        budget in 30usize..150,
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let alg_seed = seed.wrapping_add(ai as u64);

            let uncached = SimulatedOsn::new(&g);
            let mut rng_u = StdRng::seed_from_u64(alg_seed);
            let est_u = alg.estimate(&uncached, target, budget, &cfg, &mut rng_u).unwrap();

            let cache = CachedOsn::new(SimulatedOsn::new(&g));
            let session = cache.session();
            let mut rng_c = StdRng::seed_from_u64(alg_seed);
            let est_c = alg.estimate(&session, target, budget, &cfg, &mut rng_c).unwrap();

            prop_assert_eq!(
                est_u.to_bits(), est_c.to_bits(),
                "{}: cached {} vs uncached {}", alg.abbrev(), est_c, est_u
            );
            // Identical next draws certify the two runs consumed the RNG
            // streams identically (same draw count, same positions).
            prop_assert_eq!(rng_u.next_u64(), rng_c.next_u64(), "{}: RNG streams diverged", alg.abbrev());
            // The session paid the same logical calls the uncached run
            // paid raw.
            prop_assert_eq!(session.api_calls(), uncached.api_calls(), "{}", alg.abbrev());
            drop(session); // flush logical totals into the shared stats

            // CallStats invariants.
            let stats = cache.stats();
            prop_assert!(stats.misses() <= stats.logical_calls());
            // Unbounded capacity: miss counts equal distinct requests per
            // endpoint — the inner simulation's distinct counters agree,
            // and it saw only the miss traffic.
            let inner = cache.backend().stats();
            prop_assert_eq!(stats.neighbor_misses, inner.distinct_neighbor_calls);
            prop_assert_eq!(stats.label_misses, inner.distinct_label_calls);
            prop_assert_eq!(inner.neighbor_calls, stats.neighbor_misses);
            prop_assert_eq!(inner.label_calls, stats.label_misses);
        }
    }

    #[test]
    fn bounded_caches_preserve_results_too(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        capacity in 1usize..32,
    ) {
        // Even a tiny, eviction-heavy cache must never change estimates —
        // only the miss count may grow.
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        let alg = labelcount_core::NsHansenHurwitz;

        let uncached = SimulatedOsn::new(&g);
        let mut rng_u = StdRng::seed_from_u64(seed);
        let est_u = labelcount_core::Algorithm::estimate(
            &alg, &uncached, target, 80, &cfg, &mut rng_u,
        ).unwrap();

        let cache = CachedOsn::with_config(
            SimulatedOsn::new(&g),
            CacheConfig::builder().capacity(capacity).shards(4).build(),
        );
        let session = cache.session();
        let mut rng_c = StdRng::seed_from_u64(seed);
        let est_c = labelcount_core::Algorithm::estimate(
            &alg, &session, target, 80, &cfg, &mut rng_c,
        ).unwrap();

        prop_assert_eq!(est_u.to_bits(), est_c.to_bits());
        drop(session);
        let stats = cache.stats();
        prop_assert!(stats.misses() <= stats.logical_calls());
        // Bounded: misses at least the distinct-request floor.
        let inner = cache.backend().stats();
        prop_assert!(stats.neighbor_misses >= inner.distinct_neighbor_calls);
    }
}
