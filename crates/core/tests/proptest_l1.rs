//! The L1 session cache's core contract, property-tested across all 10
//! Table-2 algorithms: the per-session L1 changes *what a hit costs*,
//! never *what a query sees or what the accounting reports*.
//!
//! For random graphs, seeds, and every paper algorithm:
//!
//! * estimates through an L1-enabled session, an L1-disabled session, and
//!   the raw uncached backend are **bit-identical**;
//! * the RNG streams are bit-identical too (same number of draws in the
//!   same order);
//! * `CallStats` **logical and miss counts** are bit-identical with the
//!   L1 enabled vs disabled (unbounded L2: misses = distinct nodes per
//!   endpoint, which no session-private layer can change);
//! * the L1 accounting is internally consistent: `l1_hits <= hits`, and a
//!   disabled L1 reports zero hits;
//! * a pathologically tiny (1-slot, collision-thrashing) L1 still
//!   satisfies all of the above — collisions cost time, never
//!   correctness.
//!
//! Together with `proptest_walk`'s dense-vs-simulated replay suite (the
//! alias/`neighbor_at` plumbing consuming identical streams) this pins
//! the whole hot-path rework to the pre-rework observable behavior.

use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{CacheConfig, CachedOsn, OsnApi, SimulatedOsn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.5, &mut rng);
        with_labels(&g, &labels)
    })
}

/// L1 sizes to sweep: disabled, pathological 1-slot, and the default-ish
/// 64-slot layout (64 already holds these small graphs entirely).
const L1_SIZES: [usize; 3] = [0, 1, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn l1_on_and_off_are_bit_identical_for_every_algorithm(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        budget in 30usize..120,
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let alg_seed = seed.wrapping_add(ai as u64);

            // Reference: the raw uncached simulation.
            let uncached = SimulatedOsn::new(&g);
            let mut rng_u = StdRng::seed_from_u64(alg_seed);
            let est_u = alg.estimate(&uncached, target, budget, &cfg, &mut rng_u).unwrap();
            let next_u = rng_u.next_u64();

            let mut reference_stats = None;
            for l1_slots in L1_SIZES {
                let cache = CachedOsn::with_config(
                    SimulatedOsn::new(&g),
                    CacheConfig::builder().l1_slots(l1_slots).build(),
                );
                let session = cache.session();
                let mut rng = StdRng::seed_from_u64(alg_seed);
                let est = alg.estimate(&session, target, budget, &cfg, &mut rng).unwrap();

                prop_assert_eq!(
                    est_u.to_bits(), est.to_bits(),
                    "{} (l1_slots={}): estimate diverged from uncached",
                    alg.abbrev(), l1_slots
                );
                prop_assert_eq!(
                    next_u, rng.next_u64(),
                    "{} (l1_slots={}): RNG stream diverged", alg.abbrev(), l1_slots
                );
                prop_assert_eq!(session.api_calls(), uncached.api_calls());
                let session_l1_hits = session.l1_hits();
                if l1_slots == 0 {
                    prop_assert_eq!(session_l1_hits, 0);
                }
                drop(session); // flush into the shared stats

                let stats = cache.stats();
                prop_assert_eq!(stats.l1_hits(), session_l1_hits, "drop-flush lost L1 hits");
                prop_assert!(stats.l1_hits() <= stats.hits());
                match &reference_stats {
                    None => reference_stats = Some(stats),
                    Some(r) => {
                        // Logical and miss counts (per endpoint) must be
                        // bit-identical at every L1 size; only the L1 hit
                        // split may differ.
                        prop_assert_eq!(
                            (r.logical_neighbor_calls, r.logical_label_calls),
                            (stats.logical_neighbor_calls, stats.logical_label_calls),
                            "{} (l1_slots={}): logical counts drifted", alg.abbrev(), l1_slots
                        );
                        prop_assert_eq!(
                            (r.neighbor_misses, r.label_misses),
                            (stats.neighbor_misses, stats.label_misses),
                            "{} (l1_slots={}): miss counts drifted", alg.abbrev(), l1_slots
                        );
                    }
                }
                // The backend saw exactly the miss traffic, L1 or not.
                let inner = cache.backend().stats();
                prop_assert_eq!(inner.neighbor_calls, stats.neighbor_misses);
                prop_assert_eq!(inner.label_calls, stats.label_misses);
            }
        }
    }

    /// Repeat-heavy access through a default-size L1 absorbs every repeat
    /// without perturbing the distinct-miss invariant.
    #[test]
    fn l1_absorbs_all_repeats_on_repeat_heavy_traffic(
        g in arb_labeled_ba(),
        rounds in 2usize..6,
    ) {
        let cache = CachedOsn::new(SimulatedOsn::new(&g));
        let session = cache.session();
        let n = g.num_nodes() as u32;
        for _ in 0..rounds {
            for u in 0..n {
                session.neighbors(labelcount_graph::NodeId(u));
            }
        }
        // Default L1 (512 slots) direct-maps <= 60 nodes without conflict
        // only if their hashed slots are distinct; conflicts re-fetch from
        // the L2 — so assert the exact invariants, not perfection:
        prop_assert_eq!(session.api_calls(), rounds as u64 * n as u64);
        drop(session);
        let stats = cache.stats();
        prop_assert_eq!(stats.neighbor_misses, n as u64, "unbounded L2: misses = distinct");
        prop_assert!(stats.l1_hits() <= stats.hits());
        // At least the non-colliding majority of repeats is L1-served.
        prop_assert!(
            stats.l1_hits() > 0,
            "repeat traffic produced zero L1 hits: {:?}", stats
        );
    }
}
