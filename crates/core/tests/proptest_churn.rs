//! The dynamic-graph determinism contract, property-tested: a churn rate
//! of **zero** is not "approximately static" — it is **bit-identical** to
//! the static stack, for every one of the paper's ten Table-2 algorithms,
//! through every cache depth the repo ships:
//!
//! * a [`ChurnOsn`] with `events_per_batch == 0` behind the full
//!   L1 + L2 session stack vs the plain `GraphOsn` stack;
//! * the same backend behind a *bounded* L2 (eviction pressure) and with
//!   the L1 disabled;
//! * the paged out-of-core backend as cross-reference (its own
//!   bit-identity suite pins it to RAM).
//!
//! Zero churn also means zero invalidation: every stale-eviction counter
//! must read 0, and the backend must never report a non-`STATIC` epoch.

use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::churn::ChurnConfig;
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{CacheConfig, CachedOsn, ChurnOsn, GraphOsn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.5, &mut rng);
        with_labels(&g, &labels)
    })
}

/// Cache depths to sweep: the default L1+L2, L1 disabled, and a tiny
/// bounded L2 under constant eviction pressure.
fn cache_configs() -> [CacheConfig; 3] {
    [
        CacheConfig::builder().build(),
        CacheConfig::builder().l1_slots(0).build(),
        CacheConfig::builder().capacity(8).l1_slots(1).build(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn zero_churn_is_bit_identical_to_the_static_stack_for_every_algorithm(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        budget in 30usize..120,
        churn_seed in any::<u64>(),
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let alg_seed = seed.wrapping_add(ai as u64);

            // Reference: the static graph behind the default cache stack.
            let static_cache = CachedOsn::new(GraphOsn::new(&g));
            let session = static_cache.session();
            let mut rng_s = StdRng::seed_from_u64(alg_seed);
            let est_s = alg.estimate(&session, target, budget, &cfg, &mut rng_s).unwrap();
            let next_s = rng_s.next_u64();
            drop(session);

            for (ci, cache_cfg) in cache_configs().into_iter().enumerate() {
                // Zero events per batch: the schedule ticks, the graph
                // never changes, and neither may a single bit of output.
                let churn = ChurnOsn::new(&g, ChurnConfig {
                    seed: churn_seed,
                    events_per_batch: 0,
                    batch_interval_ticks: 5,
                    region_shift: 2,
                });
                churn.advance_to(1_000); // tick the schedule anyway
                let cache = CachedOsn::with_config(churn, cache_cfg);
                let session = cache.session();
                let mut rng_c = StdRng::seed_from_u64(alg_seed);
                let est_c = alg.estimate(&session, target, budget, &cfg, &mut rng_c).unwrap();

                prop_assert_eq!(
                    est_s.to_bits(), est_c.to_bits(),
                    "{} (cache {}): zero churn diverged from static", alg.abbrev(), ci
                );
                prop_assert_eq!(
                    next_s, rng_c.next_u64(),
                    "{} (cache {}): RNG streams diverged", alg.abbrev(), ci
                );
                prop_assert_eq!(session.l1_stale_evictions(), 0);
                drop(session);
                let stats = cache.stats();
                prop_assert_eq!(
                    stats.stale_evictions(), 0,
                    "{} (cache {}): zero churn must invalidate nothing", alg.abbrev(), ci
                );
            }
        }
    }

    /// Nonzero churn between sessions invalidates *only* what churned:
    /// the estimate may legitimately move, but re-running the same session
    /// twice with no churn in between is still bit-reproducible.
    #[test]
    fn runs_between_unadvanced_ticks_are_reproducible_under_live_churn(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        let alg = labelcount_core::NsHansenHurwitz;
        let churn = ChurnOsn::new(&g, ChurnConfig {
            seed,
            events_per_batch: 6,
            batch_interval_ticks: 1,
            region_shift: 0,
        });
        churn.advance_to(3); // mutate, then hold still
        let cache = CachedOsn::new(churn);
        let run = || {
            let session = cache.session();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
            let est = labelcount_core::Algorithm::estimate(
                &alg, &session, target, 60, &cfg, &mut rng,
            ).unwrap();
            est.to_bits()
        };
        prop_assert_eq!(run(), run(), "no churn between runs, yet bits moved");
    }
}
