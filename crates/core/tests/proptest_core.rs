//! Property-based tests for the estimators: estimates are finite and
//! scale-bounded on arbitrary inputs, inclusion probabilities behave, and
//! the theoretical bounds respond monotonically to their inputs.

use labelcount_core::bounds::{all_bounds, ne_hh_bound, ns_hh_bound, ApproxParams};
use labelcount_core::neighbor_exploration::node_inclusion_probability;
use labelcount_core::neighbor_sample::edge_inclusion_probability;
use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::with_labels;
use labelcount_graph::{GroundTruth, LabelId, LabeledGraph, TargetLabel};
use labelcount_osn::SimulatedOsn;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (8usize..50, 1usize..4, any::<u64>(), 2u32..4).prop_map(|(n, m, seed, nl)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
            .map(|i| vec![LabelId(1 + (i as u32) % nl)])
            .collect();
        with_labels(&g, &labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_is_finite_on_arbitrary_graphs(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        budget in 20usize..200,
    ) {
        let target = TargetLabel::new(LabelId(1), LabelId(2));
        let cfg = RunConfig { burn_in: 30, ..RunConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        for alg in algorithms::all_paper(0.2, 0.5) {
            let osn = SimulatedOsn::new(&g);
            let est = alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap();
            prop_assert!(est.is_finite() && est >= 0.0, "{}: {est}", alg.abbrev());
        }
    }

    #[test]
    fn inclusion_probabilities_are_probabilities(
        e in 1usize..100_000,
        k in 1usize..10_000,
        d in 1usize..100,
    ) {
        let pe = edge_inclusion_probability(e, k);
        prop_assert!((0.0..=1.0).contains(&pe));
        if d <= 2 * e {
            let pn = node_inclusion_probability(d, e, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&pn));
            // More draws, more likely included.
            prop_assert!(node_inclusion_probability(d, e, k + 1) >= pn - 1e-12);
        }
    }

    #[test]
    fn bounds_monotone_in_epsilon_and_delta(g in arb_labeled_ba()) {
        let target = TargetLabel::new(LabelId(1), LabelId(2));
        let gt = GroundTruth::compute(&g, target);
        prop_assume!(gt.f > 0);
        let tight = all_bounds(&g, &gt, ApproxParams::new(0.05, 0.05));
        let loose = all_bounds(&g, &gt, ApproxParams::new(0.2, 0.2));
        for (t, l) in tight.iter().zip(loose) {
            prop_assert!(*t >= l, "tight {t} < loose {l}");
        }
    }

    #[test]
    fn hh_bounds_scale_inversely_with_f(g in arb_labeled_ba()) {
        // Between two targets on the same graph, the rarer one needs at
        // least as many samples under the NS-HH bound (exactly (|E|-F)/F
        // scaling) — monotone in F.
        let t12 = TargetLabel::new(LabelId(1), LabelId(2));
        let t13 = TargetLabel::new(LabelId(1), LabelId(3));
        let g12 = GroundTruth::compute(&g, t12);
        let g13 = GroundTruth::compute(&g, t13);
        prop_assume!(g12.f > 0 && g13.f > 0);
        let p = ApproxParams::paper();
        let (rare, freq) = if g12.f < g13.f { (&g12, &g13) } else { (&g13, &g12) };
        prop_assert!(ns_hh_bound(&g, rare, p) >= ns_hh_bound(&g, freq, p));
        let _ = ne_hh_bound(&g, rare, p); // must not panic on any input
    }

    #[test]
    fn estimates_deterministic_given_seed(g in arb_labeled_ba(), seed in any::<u64>()) {
        let target = TargetLabel::new(LabelId(1), LabelId(2));
        let cfg = RunConfig { burn_in: 20, ..RunConfig::default() };
        for alg in algorithms::proposed() {
            let osn = SimulatedOsn::new(&g);
            let mut r1 = StdRng::seed_from_u64(seed);
            let a = alg.estimate(&osn, target, 50, &cfg, &mut r1).unwrap();
            let osn = SimulatedOsn::new(&g);
            let mut r2 = StdRng::seed_from_u64(seed);
            let b = alg.estimate(&osn, target, 50, &cfg, &mut r2).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", alg.abbrev());
        }
    }
}
