//! The resilience stack's "off is free" structural contract,
//! property-tested end to end.
//!
//! The full fault stack of this codebase is
//! `CachedOsn<AdversarialOsn<PagedGraphOsn<FaultyStorage>>>`: correlated
//! outage bursts and a circuit breaker at the OSN layer, seeded read
//! errors and torn pages at the storage layer. This suite pins the
//! contract that makes the stack safe to keep wired in permanently: with
//! every fault source off — a burst process at start rate 0, the breaker
//! absent, the retry budget unlimited, storage fault rates 0 — the whole
//! tower is **bit-identical** to today's plain in-RAM stack
//! (`CachedOsn<SimulatedOsn>`) for every Table-2 algorithm: estimates,
//! RNG streams, per-session billing, and shared cache statistics. The
//! machinery itself must be free; only injected faults may cost.

use std::path::PathBuf;

use labelcount_core::{algorithms, RunConfig};
use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::labels::{assign_binary_labels, with_labels};
use labelcount_graph::paged::{EvictionPolicy, PagedCsrWriter, PoolConfig, StorageFaultConfig};
use labelcount_graph::{LabeledGraph, TargetLabel};
use labelcount_osn::{
    AdversarialOsn, BurstConfig, CachedOsn, FaultConfig, OsnApi, PagedGraphOsn, ResilienceConfig,
    RetryPolicy, SimulatedOsn,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_labeled_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(m + 1), m, &mut rng);
        let mut labels = vec![Vec::new(); g.num_nodes()];
        assign_binary_labels(&mut labels, 0.5, &mut rng);
        with_labels(&g, &labels)
    })
}

/// A burst process that is fully configured yet can never fire: the
/// per-window start rate is 0, so no window is ever inside an outage —
/// the "rate 0" half of the structural contract, with the process'
/// bookkeeping still in the call path.
fn zero_rate_burst() -> BurstConfig {
    BurstConfig {
        window_ticks: 32,
        start_rate: 0.0,
        mean_burst_windows: 2.0,
        max_burst_windows: 4,
        outage_fault_rate: 1.0,
    }
}

fn temp_paged(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "labelcount_fault_stack_{}_{tag}.paged",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fault_stack_off_is_bit_identical_for_all_ten_algorithms(
        g in arb_labeled_ba(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        budget in 30usize..120,
    ) {
        let target = TargetLabel::new(1.into(), 2.into());
        let cfg = RunConfig { burn_in: 25, ..RunConfig::default() };
        let path = temp_paged(fault_seed);
        PagedCsrWriter::new().write(&g, &path).expect("write paged CSR file");

        for (ai, alg) in algorithms::all_paper(0.2, 0.5).iter().enumerate() {
            let alg_seed = seed.wrapping_add(ai as u64);

            // Today's stack: the plain in-RAM cached simulation.
            let clean = CachedOsn::new(SimulatedOsn::new(&g));
            let clean_session = clean.session();
            let mut rng_c = StdRng::seed_from_u64(alg_seed);
            let est_c = alg
                .estimate(&clean_session, target, budget, &cfg, &mut rng_c)
                .unwrap();

            // The full fault tower with every fault source off: clean
            // storage faults under the paged backend, a zero-rate burst
            // process, no breaker, no retry budget, no stale serving.
            let paged = PagedGraphOsn::open_with_faults(
                &path,
                PoolConfig::bounded(8, EvictionPolicy::Lru),
                StorageFaultConfig::clean(fault_seed),
            )
            .expect("reopen the paged CSR file");
            let stack = CachedOsn::new(AdversarialOsn::with_resilience(
                paged,
                FaultConfig::clean(fault_seed).with_burst(zero_rate_burst()),
                RetryPolicy::default(),
                ResilienceConfig::default(),
            ));
            let stack_session = stack.session();
            let mut rng_s = StdRng::seed_from_u64(alg_seed);
            let est_s = alg
                .estimate(&stack_session, target, budget, &cfg, &mut rng_s)
                .unwrap();

            prop_assert_eq!(
                est_c.to_bits(), est_s.to_bits(),
                "{}: fault stack (all off) {} vs clean {}", alg.abbrev(), est_s, est_c
            );
            prop_assert_eq!(
                rng_c.next_u64(), rng_s.next_u64(),
                "{}: RNG streams diverged", alg.abbrev()
            );
            prop_assert_eq!(
                clean_session.api_calls(), stack_session.api_calls(),
                "{}", alg.abbrev()
            );
            prop_assert_eq!(stack_session.retry_charges(), 0u64, "{}", alg.abbrev());
            prop_assert_eq!(stack_session.stale_served(), 0u64, "{}", alg.abbrev());
            drop(clean_session);
            drop(stack_session);
            prop_assert_eq!(clean.stats(), stack.stats(), "{}: CallStats diverged", alg.abbrev());

            // The dormant machinery observed nothing: no bursts, no
            // breaker activity, no retries at either layer.
            let fs = stack.backend().fault_stats();
            prop_assert_eq!(fs.bursts, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(fs.breaker_opens, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(fs.breaker_fast_fails, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(fs.retries, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(fs.retries_exhausted, 0u64, "{}", alg.abbrev());
            let ps = stack.backend().inner().paging_stats();
            prop_assert_eq!(ps.storage_retries, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(ps.checksum_failures, 0u64, "{}", alg.abbrev());
            prop_assert_eq!(ps.quarantined_pages, 0u64, "{}", alg.abbrev());
        }

        let _ = std::fs::remove_file(&path);
    }
}
