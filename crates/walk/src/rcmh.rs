//! Rejection-controlled Metropolis–Hastings walk (EX-RCMH).

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The rejection-controlled MH walk of Li et al. (ICDE 2015): propose a
/// uniform neighbor `v` of `u`, accept with probability
/// `min(1, (d(u)/d(v))^α)` for a control parameter `α ∈ [0, 1]`.
///
/// * `α = 1` recovers plain Metropolis–Hastings (uniform stationary
///   distribution, many rejections on skewed graphs);
/// * `α = 0` recovers the simple random walk (no rejections, degree bias);
/// * intermediate `α` trades rejections for bias: the stationary
///   distribution is `π(u) ∝ d(u)^{1−α}`, which estimators correct with
///   the importance weight [`RcmhWalk::importance_weight`] `∝ d(u)^{α−1}`.
///
/// Li et al. recommend `α ∈ [0, 0.3]`; the paper adopts the best-performing
/// setting per dataset.
#[derive(Clone, Debug)]
pub struct RcmhWalk<N> {
    current: N,
    alpha: f64,
    accepted: u64,
    proposed: u64,
}

impl<N: Copy> RcmhWalk<N> {
    /// Starts a walk at `start` with control parameter `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha ∉ [0, 1]`.
    pub fn new(start: N, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        RcmhWalk {
            current: start,
            alpha,
            accepted: 0,
            proposed: 0,
        }
    }

    /// The control parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Importance weight `d(u)^{α−1}` correcting the walk's stationary
    /// distribution back to uniform: the reweighted estimate of a node
    /// fraction is `Σ I(u_i)·w(u_i) / Σ w(u_i)`.
    pub fn importance_weight(&self, degree: usize) -> f64 {
        assert!(degree > 0, "importance weight undefined for degree 0");
        (degree as f64).powf(self.alpha - 1.0)
    }

    /// Fraction of proposals accepted so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for RcmhWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let du = g.degree(self.current);
        if du == 0 {
            return self.current;
        }
        if let Some(v) = g.sample_neighbor(self.current, rng) {
            self.proposed += 1;
            let dv = g.degree(v);
            let accept = if dv <= du {
                true
            } else {
                rng.gen::<f64>() < (du as f64 / dv as f64).powf(self.alpha)
            };
            if accept {
                self.current = v;
                self.accepted += 1;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::NodeId;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_matches_d_to_one_minus_alpha() {
        let g = test_graph(401);
        let osn = SimulatedOsn::new(&g);
        let alpha = 0.3;
        let mut rng = StdRng::seed_from_u64(41);
        let walker = RcmhWalk::new(NodeId(0), alpha);
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let weights: Vec<f64> = g
            .nodes()
            .map(|u| (g.degree(u) as f64).powf(1.0 - alpha))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let expected: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
        assert_tv_close(&freq, &expected, 0.02, "RCMH walk");
    }

    #[test]
    fn alpha_zero_is_simple_walk() {
        let g = test_graph(402);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(42);
        let mut walker = RcmhWalk::new(NodeId(0), 0.0);
        for _ in 0..5_000 {
            walker.step(&osn, &mut rng);
        }
        // With alpha = 0 the acceptance probability is always 1.
        assert_eq!(walker.acceptance_rate(), 1.0);
    }

    #[test]
    fn alpha_one_accepts_less_than_mh_free_walk() {
        let g = test_graph(403);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(43);
        let mut walker = RcmhWalk::new(NodeId(0), 1.0);
        for _ in 0..5_000 {
            walker.step(&osn, &mut rng);
        }
        assert!(walker.acceptance_rate() < 1.0);
    }

    #[test]
    fn importance_weights_invert_stationary_bias() {
        let w = RcmhWalk::new(NodeId(0), 0.2);
        // d^{α−1} decreases in degree for α < 1.
        assert!(w.importance_weight(1) > w.importance_weight(10));
        assert!((w.importance_weight(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        RcmhWalk::new(NodeId(0), 1.5);
    }
}
