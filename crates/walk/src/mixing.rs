//! Mixing time of the simple random walk (paper §5.1, Eq. 23).
//!
//! The paper defines
//!
//! ```text
//! T(ε) = max_i min{ t : ½ Σ_u |π(u) − [π(i) Pᵗ](u)| < ε }
//! ```
//!
//! where `P` is the simple-walk transition matrix and `π(i)` the point mass
//! at node `i`, and uses `ε = 10⁻³`. Samples drawn before the mixing time
//! are discarded (burn-in). This module computes `T(ε)` by sparse power
//! iteration: each step costs `O(|E|)`, so the exact all-starts computation
//! is `O(|V| · |E| · T)` — fine for the smaller surrogates; for larger
//! graphs [`Starts::Sampled`] evaluates the max over a random subset of
//! start nodes (a lower bound on the true max, which is how measurement
//! studies estimate mixing times in practice).
//!
//! This computation requires full graph access and is therefore an
//! *evaluation-side* tool: estimators receive the resulting burn-in length
//! as a parameter, never the graph.

use labelcount_graph::LabeledGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// The stationary distribution `π(u) = d(u) / 2|E|` of the simple walk.
///
/// Isolated nodes get probability 0 (they are unreachable anyway).
pub fn stationary_distribution(g: &LabeledGraph) -> Vec<f64> {
    let denom = g.degree_sum() as f64;
    g.nodes().map(|u| g.degree(u) as f64 / denom).collect()
}

/// One application of the transition operator: `next = cur · P`, where
/// `P(u, v) = 1/d(u)` for each neighbor `v` (isolated nodes keep their
/// mass). `next` is cleared and overwritten.
pub fn step_distribution(g: &LabeledGraph, cur: &[f64], next: &mut [f64]) {
    assert_eq!(cur.len(), g.num_nodes());
    assert_eq!(next.len(), g.num_nodes());
    next.fill(0.0);
    for u in g.nodes() {
        let mass = cur[u.index()];
        if mass == 0.0 {
            continue;
        }
        let d = g.degree(u);
        if d == 0 {
            next[u.index()] += mass;
            continue;
        }
        let share = mass / d as f64;
        for &v in g.neighbors(u) {
            next[v.index()] += share;
        }
    }
}

/// Total-variation distance `½ Σ |a(u) − b(u)|`.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 2.0
}

/// Steps until the distribution started at `start` is within `eps` of
/// stationarity, or `None` if not reached within `max_t` steps (e.g. on
/// bipartite graphs, where the plain walk is periodic and never mixes).
pub fn mixing_time_from_start(
    g: &LabeledGraph,
    start: labelcount_graph::NodeId,
    eps: f64,
    max_t: usize,
) -> Option<usize> {
    let pi = stationary_distribution(g);
    let mut cur = vec![0.0; g.num_nodes()];
    cur[start.index()] = 1.0;
    let mut next = vec![0.0; g.num_nodes()];
    if total_variation(&cur, &pi) < eps {
        return Some(0);
    }
    for t in 1..=max_t {
        step_distribution(g, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
        if total_variation(&cur, &pi) < eps {
            return Some(t);
        }
    }
    None
}

/// Which start nodes to take the maximum over.
#[derive(Clone, Copy, Debug)]
pub enum Starts {
    /// Every node — the exact definition (cost `O(|V| · |E| · T)`).
    All,
    /// A uniform random subset of the given size — a lower bound.
    Sampled(usize),
}

/// Result of [`mixing_time`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixingEstimate {
    /// `max` over evaluated starts of the per-start mixing time; `None` if
    /// any evaluated start failed to mix within the step cap.
    pub t: Option<usize>,
    /// How many start nodes were evaluated.
    pub starts_evaluated: usize,
    /// Whether every node was evaluated (i.e. `t` is the exact `T(ε)`).
    pub exact: bool,
}

/// Computes the mixing time `T(ε)` per Eq. 23.
pub fn mixing_time<R: Rng + ?Sized>(
    g: &LabeledGraph,
    eps: f64,
    max_t: usize,
    starts: Starts,
    rng: &mut R,
) -> MixingEstimate {
    assert!(eps > 0.0, "eps must be positive");
    let all: Vec<labelcount_graph::NodeId> = g.nodes().collect();
    let (chosen, exact): (Vec<_>, bool) = match starts {
        Starts::All => (all, true),
        Starts::Sampled(k) if k >= g.num_nodes() => (all, true),
        Starts::Sampled(k) => {
            let mut picks = all;
            picks.shuffle(rng);
            picks.truncate(k);
            (picks, false)
        }
    };
    let starts_evaluated = chosen.len();
    let mut worst = Some(0usize);
    for s in chosen {
        match (mixing_time_from_start(g, s, eps, max_t), worst) {
            (Some(t), Some(w)) => worst = Some(w.max(t)),
            _ => {
                worst = None;
                break;
            }
        }
    }
    MixingEstimate {
        t: worst,
        starts_evaluated,
        exact,
    }
}

/// A pragmatic burn-in length when computing `T(ε)` is too expensive:
/// `ceil(c · log |V|)` steps, the scaling of rapidly-mixing social graphs
/// (Mohaisen et al., IMC 2010 observe super-logarithmic but still small
/// mixing times; `c = 50` is deliberately generous).
pub fn default_burn_in(num_nodes: usize) -> usize {
    let n = num_nodes.max(2) as f64;
    (50.0 * n.ln()).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::gen::{barabasi_albert, watts_strogatz};
    use labelcount_graph::{GraphBuilder, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_sums_to_one_and_is_degree_proportional() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = barabasi_albert(100, 3, &mut rng);
        let pi = stationary_distribution(&g);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for u in g.nodes() {
            assert!((pi[u.index()] - g.degree(u) as f64 / g.degree_sum() as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn step_preserves_probability_mass() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = barabasi_albert(80, 2, &mut rng);
        let mut cur = vec![0.0; g.num_nodes()];
        cur[5] = 1.0;
        let mut next = vec![0.0; g.num_nodes()];
        step_distribution(&g, &cur, &mut next);
        assert!((next.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = barabasi_albert(60, 3, &mut rng);
        let pi = stationary_distribution(&g);
        let mut next = vec![0.0; g.num_nodes()];
        step_distribution(&g, &pi, &mut next);
        assert!(total_variation(&pi, &next) < 1e-12);
    }

    #[test]
    fn total_variation_basics() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.5, 0.5], &[0.75, 0.25]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn ba_graph_mixes_quickly() {
        let mut rng = StdRng::seed_from_u64(74);
        let g = barabasi_albert(500, 4, &mut rng);
        let est = mixing_time(&g, 1e-3, 1_000, Starts::Sampled(10), &mut rng);
        let t = est.t.expect("BA graph must mix");
        assert!(t > 0 && t < 200, "mixing time {t}");
        assert!(!est.exact);
        assert_eq!(est.starts_evaluated, 10);
    }

    #[test]
    fn ring_lattice_mixes_slower_than_ba() {
        let mut rng = StdRng::seed_from_u64(75);
        let ba = barabasi_albert(200, 4, &mut rng);
        let ws = watts_strogatz(200, 4, 0.01, &mut rng);
        let t_ba = mixing_time(&ba, 1e-2, 20_000, Starts::Sampled(5), &mut rng)
            .t
            .unwrap();
        let t_ws = mixing_time(&ws, 1e-2, 20_000, Starts::Sampled(5), &mut rng)
            .t
            .unwrap();
        assert!(t_ws > t_ba, "WS {t_ws} vs BA {t_ba}");
    }

    #[test]
    fn bipartite_graph_never_mixes() {
        // Even cycle = bipartite = periodic plain walk.
        let mut b = GraphBuilder::new(6);
        for i in 0..6u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 6));
        }
        let g = b.build();
        assert_eq!(mixing_time_from_start(&g, NodeId(0), 1e-3, 2_000), None);
    }

    #[test]
    fn exact_mode_covers_all_starts() {
        let mut rng = StdRng::seed_from_u64(76);
        let g = barabasi_albert(40, 3, &mut rng);
        let est = mixing_time(&g, 1e-3, 2_000, Starts::All, &mut rng);
        assert!(est.exact);
        assert_eq!(est.starts_evaluated, 40);
        assert!(est.t.is_some());
        // Exact max dominates any sampled max.
        let sampled = mixing_time(&g, 1e-3, 2_000, Starts::Sampled(5), &mut rng);
        assert!(sampled.t.unwrap() <= est.t.unwrap());
    }

    #[test]
    fn default_burn_in_scales_logarithmically() {
        assert!(default_burn_in(4_000) < default_burn_in(4_000_000));
        assert!(default_burn_in(100) >= 1);
    }
}
