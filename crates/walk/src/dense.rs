//! Full-knowledge walkable view of a [`LabeledGraph`] with O(1)
//! alias-table start sampling — the evaluation-side fast path.
//!
//! Estimators must walk through the restricted OSN API, but the
//! *evaluation machinery* around them (perf harnesses, mixing studies,
//! ground-truth variance experiments) owns the whole graph and pays the
//! API simulation's bookkeeping for nothing. [`DenseGraph`] is a
//! [`WalkableGraph`] straight over the CSR arrays: every operation is a
//! direct slice index, and because the degree sequence is known up front
//! it precomputes an [`AliasTable`] so [`WalkableGraph::stationary_start`]
//! draws a node with probability `d(u)/2|E|` — the simple random walk's
//! stationary distribution — in O(1). A walk started there needs **zero
//! burn-in**: every step is immediately a stationary sample.
//!
//! RNG-stream compatibility: `random_node`, `sample_neighbor`, and
//! `neighbor_at` consume draws exactly like the [`SimulatedOsn`]
//! implementation (same ranges, same order), so a walker replayed on a
//! `DenseGraph` visits the bit-identical node sequence — enforced by the
//! tests below and the `proptest_l1` suite. Only `stationary_start`
//! deliberately diverges (that is its purpose; it is a new entry point,
//! not a changed one).
//!
//! [`SimulatedOsn`]: labelcount_osn::SimulatedOsn

use labelcount_graph::{AliasTable, LabeledGraph, NodeId};
use rand::Rng;

use crate::traits::WalkableGraph;

/// A full-knowledge, zero-overhead walkable state space over a
/// [`LabeledGraph`], with a precomputed degree alias table for O(1)
/// degree-proportional starts.
///
/// ```
/// use labelcount_graph::{GraphBuilder, NodeId};
/// use labelcount_walk::{DenseGraph, SimpleWalk, WalkableGraph, Walker};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// let dense = DenseGraph::new(&g);
/// let mut rng = StdRng::seed_from_u64(1);
/// // Started at the stationary distribution: no burn-in needed.
/// let mut walk = SimpleWalk::new(dense.stationary_start(&mut rng));
/// walk.step(&dense, &mut rng);
/// ```
pub struct DenseGraph<'g> {
    graph: &'g LabeledGraph,
    max_degree: usize,
    /// Degree-proportional start sampler; `None` for an edgeless graph
    /// (where `stationary_start` falls back to the uniform draw).
    start_alias: Option<AliasTable>,
}

impl<'g> DenseGraph<'g> {
    /// Wraps a graph, precomputing the maximum degree and the degree
    /// alias table (O(|V|), done once).
    pub fn new(graph: &'g LabeledGraph) -> Self {
        let max_degree = graph.nodes().map(|u| graph.degree(u)).max().unwrap_or(0);
        DenseGraph {
            graph,
            max_degree,
            start_alias: AliasTable::from_degrees(graph),
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &'g LabeledGraph {
        self.graph
    }

    /// Whether degree-proportional starts are available (false only for
    /// edgeless graphs).
    pub fn has_stationary_start(&self) -> bool {
        self.start_alias.is_some()
    }
}

impl WalkableGraph for DenseGraph<'_> {
    type Node = NodeId;

    fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }

    fn sample_neighbor<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        // Identical draw pattern to `OsnApiExt::sample_neighbor`, so
        // walkers replay the same node sequence on either space.
        let ns = self.graph.neighbors(u);
        if ns.is_empty() {
            None
        } else {
            Some(ns[rng.gen_range(0..ns.len())])
        }
    }

    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        // Identical draw pattern to `OsnApiExt::random_node`.
        assert!(
            self.graph.num_nodes() > 0,
            "cannot sample from an empty graph"
        );
        NodeId(rng.gen_range(0..self.graph.num_nodes() as u32))
    }

    fn neighbor_at(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.graph.neighbors(u).get(i).copied()
    }

    /// O(1) degree-proportional draw from the precomputed alias table:
    /// one uniform integer, one uniform float, one probe — versus the
    /// O(log |V|) cumulative-degree binary search it replaces. Falls back
    /// to the uniform draw on an edgeless graph.
    fn stationary_start<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        match &self.start_alias {
            Some(table) => table.sample_node(rng),
            None => self.random_node(rng),
        }
    }

    fn max_degree_bound(&self) -> usize {
        self.max_degree
    }

    fn num_states(&self) -> usize {
        self.graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use crate::{GmdWalk, MaxDegreeWalk, SimpleWalk, Walker};
    use labelcount_graph::GraphBuilder;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walkers_replay_identical_sequences_on_dense_and_simulated() {
        let g = test_graph(601);
        let dense = DenseGraph::new(&g);
        let osn = SimulatedOsn::new(&g);
        let steps = 2_000;

        // Simple walk, max-degree walk (legacy and single-draw), GMD walk
        // (legacy and single-draw): all must visit the bit-identical node
        // sequence on the full-knowledge space and the API simulation.
        macro_rules! check_pair {
            ($name:literal, $mk_dense:expr, $mk_osn:expr) => {{
                let mut rng_a = StdRng::seed_from_u64(61);
                let mut wa = $mk_dense;
                let a: Vec<NodeId> = (0..steps).map(|_| wa.step(&dense, &mut rng_a)).collect();
                let mut rng_b = StdRng::seed_from_u64(61);
                let mut wb = $mk_osn;
                let b: Vec<NodeId> = (0..steps).map(|_| wb.step(&osn, &mut rng_b)).collect();
                assert_eq!(
                    a, b,
                    "{} diverged between DenseGraph and SimulatedOsn",
                    $name
                );
            }};
        }

        check_pair!(
            "simple",
            SimpleWalk::new(NodeId(0)),
            SimpleWalk::new(NodeId(0))
        );
        check_pair!(
            "max-degree legacy",
            MaxDegreeWalk::new(&dense, NodeId(0)),
            MaxDegreeWalk::new(&osn, NodeId(0))
        );
        check_pair!(
            "max-degree single-draw",
            MaxDegreeWalk::new(&dense, NodeId(0)).single_draw(),
            MaxDegreeWalk::new(&osn, NodeId(0)).single_draw()
        );
        check_pair!(
            "gmd legacy",
            GmdWalk::new(NodeId(0), 6),
            GmdWalk::new(NodeId(0), 6)
        );
        check_pair!(
            "gmd single-draw",
            GmdWalk::new(NodeId(0), 6).single_draw(),
            GmdWalk::new(NodeId(0), 6).single_draw()
        );
    }

    #[test]
    fn stationary_start_is_degree_proportional() {
        let g = test_graph(602);
        let dense = DenseGraph::new(&g);
        let mut rng = StdRng::seed_from_u64(62);
        let trials = 200_000;
        let mut counts = vec![0usize; g.num_nodes()];
        for _ in 0..trials {
            counts[dense.stationary_start(&mut rng).index()] += 1;
        }
        let freq: Vec<f64> = counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect();
        let expected: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 / g.degree_sum() as f64)
            .collect();
        assert_tv_close(&freq, &expected, 0.01, "alias stationary start");
    }

    #[test]
    fn zero_burn_in_walk_from_stationary_start_is_already_mixed() {
        // The payoff of the alias start: sample immediately, no burn-in,
        // and the visit frequencies still match π(u) = d(u)/2|E|.
        let g = test_graph(603);
        let dense = DenseGraph::new(&g);
        let mut rng = StdRng::seed_from_u64(63);
        let walker = SimpleWalk::new(dense.stationary_start(&mut rng));
        let freq = visit_frequencies(
            &dense,
            walker,
            400_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 / g.degree_sum() as f64)
            .collect();
        assert_tv_close(&freq, &expected, 0.02, "zero-burn-in walk");
    }

    #[test]
    fn edgeless_graph_falls_back_to_uniform_start() {
        let g = GraphBuilder::new(3).build();
        let dense = DenseGraph::new(&g);
        assert!(!dense.has_stationary_start());
        let mut legacy = StdRng::seed_from_u64(64);
        let mut fallback = StdRng::seed_from_u64(64);
        for _ in 0..16 {
            assert_eq!(
                dense.random_node(&mut legacy),
                dense.stationary_start(&mut fallback)
            );
        }
    }

    #[test]
    fn accessors_expose_the_graph() {
        let g = test_graph(604);
        let dense = DenseGraph::new(&g);
        assert_eq!(dense.num_states(), g.num_nodes());
        assert_eq!(dense.graph().num_edges(), g.num_edges());
        assert!(dense.max_degree_bound() >= 3);
        assert_eq!(
            dense.neighbor_at(NodeId(0), 0),
            g.neighbors(NodeId(0)).first().copied()
        );
    }
}
