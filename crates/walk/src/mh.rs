//! Metropolis–Hastings random walk (uniform stationary distribution).

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The Metropolis–Hastings random walk: propose a uniformly random neighbor
/// `v` of the current state `u`, accept with probability
/// `min(1, d(u)/d(v))`, otherwise stay at `u`.
///
/// The acceptance rule makes the stationary distribution uniform over the
/// (connected component of the) state space, so visited states can be used
/// as uniform node samples without reweighting — the mechanism behind the
/// EX-MHRW baseline.
#[derive(Clone, Debug)]
pub struct MetropolisHastingsWalk<N> {
    current: N,
    accepted: u64,
    proposed: u64,
}

impl<N: Copy> MetropolisHastingsWalk<N> {
    /// Starts a walk at `start`.
    pub fn new(start: N) -> Self {
        MetropolisHastingsWalk {
            current: start,
            accepted: 0,
            proposed: 0,
        }
    }

    /// Fraction of proposals accepted so far (diagnostic; low acceptance
    /// means the walk wastes API calls, the motivation for RCMH).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for MetropolisHastingsWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let du = g.degree(self.current);
        if du == 0 {
            return self.current;
        }
        if let Some(v) = g.sample_neighbor(self.current, rng) {
            self.proposed += 1;
            let dv = g.degree(v);
            // Accept with min(1, d(u)/d(v)).
            if dv <= du || rng.gen::<f64>() < du as f64 / dv as f64 {
                self.current = v;
                self.accepted += 1;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::NodeId;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_is_uniform() {
        let g = test_graph(201);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(21);
        let walker = MetropolisHastingsWalk::new(NodeId(0));
        let freq = visit_frequencies(
            &osn,
            walker,
            400_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.02, "MH walk");
    }

    #[test]
    fn acceptance_rate_below_one_on_skewed_graph() {
        let g = test_graph(202);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(22);
        let mut walker = MetropolisHastingsWalk::new(NodeId(0));
        for _ in 0..5_000 {
            walker.step(&osn, &mut rng);
        }
        let rate = walker.acceptance_rate();
        assert!(rate > 0.1 && rate < 1.0, "acceptance rate {rate}");
    }

    #[test]
    fn stays_on_edges_or_in_place() {
        let g = test_graph(203);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(23);
        let mut walker = MetropolisHastingsWalk::new(NodeId(1));
        let mut prev = Walker::<SimulatedOsn>::current(&walker);
        for _ in 0..300 {
            let next = walker.step(&osn, &mut rng);
            assert!(next == prev || g.has_edge(prev, next));
            prev = next;
        }
    }
}
