//! General maximum-degree random walk (EX-GMD).

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The general maximum-degree walk of Li et al. (ICDE 2015): a
/// maximum-degree walk whose virtual degree `c` need *not* dominate the
/// true maximum. Every state is padded with a self-loop of weight
/// `max(0, c − d(u))`:
///
/// * if `d(u) ≥ c` the walk always moves (no laziness on hubs);
/// * otherwise it moves with probability `d(u)/c`.
///
/// The stationary distribution is `π(u) ∝ max(d(u), c)`; estimators correct
/// it with the importance weight [`GmdWalk::importance_weight`]
/// `= 1 / max(d(u), c)`. Li et al. parameterize `c = δ · d_max` with
/// `δ ∈ [0.3, 0.7]`; [`GmdWalk::with_delta`] applies that convention.
#[derive(Clone, Debug)]
pub struct GmdWalk<N> {
    current: N,
    c: usize,
    single_draw: bool,
}

impl<N: Copy> GmdWalk<N> {
    /// Starts a walk at `start` with explicit virtual degree `c`.
    ///
    /// # Panics
    /// Panics if `c == 0`.
    pub fn new(start: N, c: usize) -> Self {
        assert!(c >= 1, "virtual degree c must be positive");
        GmdWalk {
            current: start,
            c,
            single_draw: false,
        }
    }

    /// Switches the walk to **single-draw proposals**: one uniform index
    /// in `[0, max(d(u), c))` both decides the lazy self-loop
    /// (`index ≥ d(u)`) and selects the neighbor
    /// ([`WalkableGraph::neighbor_at`]), instead of a laziness draw
    /// followed by a neighbor draw. Identical stationary distribution
    /// (`π(u) ∝ max(d(u), c)`), fewer RNG draws; opt-in because the RNG
    /// *stream* differs from the legacy path the committed baselines were
    /// produced with.
    pub fn single_draw(mut self) -> Self {
        self.single_draw = true;
        self
    }

    /// Starts a walk with `c = δ · d_max` (clamped to at least 1), the
    /// parameterization used in the paper's experiments.
    ///
    /// # Panics
    /// Panics if `delta ∉ (0, 1]`.
    pub fn with_delta<G: WalkableGraph<Node = N> + ?Sized>(g: &G, start: N, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "delta must be in (0, 1], got {delta}"
        );
        let c = ((g.max_degree_bound() as f64 * delta).round() as usize).max(1);
        GmdWalk::new(start, c)
    }

    /// The virtual degree `c`.
    pub fn virtual_degree(&self) -> usize {
        self.c
    }

    /// Importance weight `1 / max(d(u), c)` correcting the stationary
    /// distribution back to uniform.
    pub fn importance_weight(&self, degree: usize) -> f64 {
        1.0 / degree.max(self.c) as f64
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for GmdWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let du = g.degree(self.current);
        if du == 0 {
            return self.current;
        }
        if self.single_draw {
            // One draw over the c-padded neighbor multiset: index < d(u)
            // names the neighbor, the max(0, c − d(u)) tail is self-loops.
            let idx = rng.gen_range(0..du.max(self.c));
            if idx < du {
                if let Some(v) = g.neighbor_at(self.current, idx) {
                    self.current = v;
                }
            }
            return self.current;
        }
        let move_now = du >= self.c || rng.gen_range(0..self.c) < du;
        if move_now {
            if let Some(v) = g.sample_neighbor(self.current, rng) {
                self.current = v;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::NodeId;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_is_max_d_c() {
        let g = test_graph(501);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(51);
        let c = 6;
        let walker = GmdWalk::new(NodeId(0), c);
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let weights: Vec<f64> = g.nodes().map(|u| g.degree(u).max(c) as f64).collect();
        let wsum: f64 = weights.iter().sum();
        let expected: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
        assert_tv_close(&freq, &expected, 0.02, "GMD walk");
    }

    #[test]
    fn c_one_is_simple_walk_distribution() {
        let g = test_graph(502);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(52);
        let walker = GmdWalk::new(NodeId(0), 1);
        let freq = visit_frequencies(
            &osn,
            walker,
            400_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 / g.degree_sum() as f64)
            .collect();
        assert_tv_close(&freq, &expected, 0.02, "GMD c=1");
    }

    #[test]
    fn single_draw_stationary_distribution_matches_legacy() {
        let g = test_graph(505);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(55);
        let c = 6;
        let walker = GmdWalk::new(NodeId(0), c).single_draw();
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let weights: Vec<f64> = g.nodes().map(|u| g.degree(u).max(c) as f64).collect();
        let wsum: f64 = weights.iter().sum();
        let expected: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
        assert_tv_close(&freq, &expected, 0.02, "single-draw GMD walk");
    }

    #[test]
    fn with_delta_scales_bound() {
        let g = test_graph(503);
        let osn = SimulatedOsn::new(&g);
        let w = GmdWalk::with_delta(&osn, NodeId(0), 0.5);
        let dmax = osn.max_degree_bound();
        assert_eq!(w.virtual_degree(), ((dmax as f64) * 0.5).round() as usize);
    }

    #[test]
    fn importance_weight_flat_below_c() {
        let w = GmdWalk::new(NodeId(0), 10);
        assert_eq!(w.importance_weight(3), w.importance_weight(9));
        assert!(w.importance_weight(20) < w.importance_weight(10));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_rejected() {
        let g = test_graph(504);
        let osn = SimulatedOsn::new(&g);
        GmdWalk::with_delta(&osn, NodeId(0), 0.0);
    }
}
