//! Simple random walk.

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The simple random walk: at each step, move to a uniformly random
/// neighbor of the current state.
///
/// On a connected non-bipartite graph the walk converges to the stationary
/// distribution `π(u) = d(u) / 2|E|` (Lovász 1993), which is what both
/// NeighborSample and NeighborExploration rely on. On an isolated state the
/// walk stays put (degenerate but well-defined; callers should start walks
/// inside the giant component, as the paper's evaluation does).
///
/// ```
/// use labelcount_graph::{GraphBuilder, NodeId};
/// use labelcount_osn::SimulatedOsn;
/// use labelcount_walk::{SimpleWalk, Walker};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// let osn = SimulatedOsn::new(&g);
/// let mut rng = StdRng::seed_from_u64(7);
///
/// let mut walk = SimpleWalk::new(NodeId(0));
/// walk.burn_in(&osn, 10, &mut rng);       // reach stationarity first
/// let next = walk.step(&osn, &mut rng);   // then each step is a sample
/// assert!(g.has_edge(Walker::<SimulatedOsn>::current(&walk), next) || next == Walker::<SimulatedOsn>::current(&walk));
/// ```
#[derive(Clone, Debug)]
pub struct SimpleWalk<N> {
    current: N,
    steps: u64,
}

impl<N: Copy> SimpleWalk<N> {
    /// Starts a walk at `start`.
    pub fn new(start: N) -> Self {
        SimpleWalk {
            current: start,
            steps: 0,
        }
    }

    /// Starts a walk at a random state of `g`.
    pub fn from_random_start<G, R>(g: &G, rng: &mut R) -> Self
    where
        G: WalkableGraph<Node = N> + ?Sized,
        R: Rng + ?Sized,
    {
        SimpleWalk::new(g.random_node(rng))
    }

    /// Number of steps taken so far (including burn-in).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for SimpleWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        self.steps += 1;
        if let Some(next) = g.sample_neighbor(self.current, rng) {
            self.current = next;
        }
        self.current
    }

    /// Batched override: keeps the walk position in a local across the whole
    /// buffer and commits walker state (`current`, the step counter) once at
    /// the end, instead of a field load + two field stores per step. The
    /// visit sequence is bit-identical to a [`Walker::step`] loop — same RNG
    /// draws in the same order — so callers can switch freely between the
    /// per-step and batched paths.
    fn steps_into<R: Rng + ?Sized>(&mut self, g: &G, buf: &mut [G::Node], rng: &mut R) {
        let mut cur = self.current;
        for slot in buf.iter_mut() {
            if let Some(next) = g.sample_neighbor(cur, rng) {
                cur = next;
            }
            *slot = cur;
        }
        self.current = cur;
        self.steps += buf.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::{GraphBuilder, NodeId};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_is_degree_proportional() {
        let g = test_graph(101);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let walker = SimpleWalk::new(NodeId(0));
        let freq = visit_frequencies(
            &osn,
            walker,
            400_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 / g.degree_sum() as f64)
            .collect();
        assert_tv_close(&freq, &expected, 0.02, "simple walk");
    }

    #[test]
    fn walk_moves_along_edges() {
        let g = test_graph(102);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let mut walker = SimpleWalk::new(NodeId(3));
        let mut prev = Walker::<SimulatedOsn>::current(&walker);
        for _ in 0..200 {
            let next = walker.step(&osn, &mut rng);
            assert!(g.has_edge(prev, next), "walk must follow edges");
            prev = next;
        }
        assert_eq!(walker.steps_taken(), 200);
    }

    #[test]
    fn isolated_node_stays_put() {
        let g = GraphBuilder::new(1).build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let mut walker = SimpleWalk::new(NodeId(0));
        assert_eq!(walker.step(&osn, &mut rng), NodeId(0));
    }

    #[test]
    fn batched_steps_match_per_step_sequence() {
        let g = test_graph(104);
        let osn = SimulatedOsn::new(&g);

        let mut rng_a = StdRng::seed_from_u64(11);
        let mut per_step = SimpleWalk::new(NodeId(0));
        let singles: Vec<NodeId> = (0..257).map(|_| per_step.step(&osn, &mut rng_a)).collect();

        let mut rng_b = StdRng::seed_from_u64(11);
        let mut batched = SimpleWalk::new(NodeId(0));
        let mut buf = vec![NodeId(0); 257];
        Walker::<SimulatedOsn>::steps_into(&mut batched, &osn, &mut buf, &mut rng_b);

        assert_eq!(singles, buf);
        assert_eq!(per_step.steps_taken(), batched.steps_taken());
        assert_eq!(
            Walker::<SimulatedOsn>::current(&per_step),
            Walker::<SimulatedOsn>::current(&batched)
        );
    }

    #[test]
    fn batched_steps_with_empty_buffer_is_a_no_op() {
        let g = test_graph(105);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(12);
        let mut walker = SimpleWalk::new(NodeId(5));
        Walker::<SimulatedOsn>::steps_into(&mut walker, &osn, &mut [], &mut rng);
        assert_eq!(walker.steps_taken(), 0);
        assert_eq!(Walker::<SimulatedOsn>::current(&walker), NodeId(5));
    }

    #[test]
    fn burn_in_advances_step_counter() {
        let g = test_graph(103);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(10);
        let mut walker = SimpleWalk::new(NodeId(0));
        Walker::<SimulatedOsn>::burn_in(&mut walker, &osn, 50, &mut rng);
        assert_eq!(walker.steps_taken(), 50);
    }
}
