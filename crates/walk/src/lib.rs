//! # labelcount-walk
//!
//! Random-walk engine for restricted-access graph sampling.
//!
//! The estimators of Wu et al. (EDBT 2018) and the baseline adaptations of
//! Li et al. (ICDE 2015) all reduce to "run some random walk, observe the
//! visited states". This crate provides those walks, generically over any
//! state space exposing restricted access ([`WalkableGraph`]), so the same
//! implementations run on the OSN itself (states = users) and on the
//! implicit line graph `G'` (states = friendships):
//!
//! * [`SimpleWalk`] — simple random walk; stationary distribution
//!   `π(u) = d(u) / 2|E|` (the basis of the paper's two samplers);
//! * [`MetropolisHastingsWalk`] — MH-corrected walk with uniform
//!   stationary distribution (baseline EX-MHRW);
//! * [`MaxDegreeWalk`] — lazy walk with self-loops padding every node to
//!   the maximum degree, uniform stationary distribution (EX-MDRW);
//! * [`RcmhWalk`] — rejection-controlled MH with exponent `α`,
//!   stationary `∝ d(u)^{1−α}` (EX-RCMH);
//! * [`GmdWalk`] — general maximum-degree walk with virtual degree `c`,
//!   stationary `∝ max(d(u), c)` (EX-GMD);
//! * [`NonBacktrackingWalk`] — never immediately reverses an edge
//!   (extension; cited in the paper as a more efficient alternative
//!   sampler, Lee et al. SIGMETRICS 2012).
//!
//! The [`mixing`] module computes the mixing time `T(ε)` of the simple
//! random walk exactly as the paper defines it (Eq. 23), by iterating the
//! transition operator and measuring total-variation distance to the
//! stationary distribution.
//!
//! Hot-path sampling: [`WalkableGraph`] exposes degree-proportional
//! [`WalkableGraph::stationary_start`] draws (O(1) via
//! [`labelcount_graph::AliasTable`] on the full-knowledge [`DenseGraph`];
//! a bit-identical uniform fallback on restricted-access spaces) and
//! [`WalkableGraph::neighbor_at`] indexing, which powers the opt-in
//! single-draw proposal mode of [`MaxDegreeWalk`] and [`GmdWalk`] (one
//! RNG draw per step instead of two).

#![warn(missing_docs)]

pub mod dense;
pub mod gmd;
pub mod maxdeg;
pub mod mh;
pub mod mixing;
pub mod nonbacktracking;
pub mod rcmh;
pub mod simple;
pub mod traits;

pub use dense::DenseGraph;
pub use gmd::GmdWalk;
pub use maxdeg::MaxDegreeWalk;
pub use mh::MetropolisHastingsWalk;
pub use nonbacktracking::NonBacktrackingWalk;
pub use rcmh::RcmhWalk;
pub use simple::SimpleWalk;
pub use traits::{WalkableGraph, Walker};
