//! Maximum-degree random walk (uniform stationary distribution).

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The maximum-degree random walk: conceptually, pad every state with
/// self-loops up to the maximum degree `d_max`, then walk uniformly. From
/// state `u` the walk moves to a uniform neighbor with probability
/// `d(u)/d_max` and stays put otherwise, giving a uniform stationary
/// distribution without needing the neighbor's degree (one fewer API call
/// per step than MH, at the cost of self-loop laziness on low-degree
/// states) — the EX-MDRW baseline.
#[derive(Clone, Debug)]
pub struct MaxDegreeWalk<N> {
    current: N,
    dmax: usize,
    self_loops: u64,
    moves: u64,
    single_draw: bool,
}

impl<N: Copy> MaxDegreeWalk<N> {
    /// Starts a walk at `start` using the graph's maximum-degree bound.
    pub fn new<G: WalkableGraph<Node = N> + ?Sized>(g: &G, start: N) -> Self {
        let dmax = g.max_degree_bound().max(1);
        MaxDegreeWalk {
            current: start,
            dmax,
            self_loops: 0,
            moves: 0,
            single_draw: false,
        }
    }

    /// Starts a walk with an explicit degree bound (must dominate every
    /// state's degree; a loose bound only slows mixing, it does not bias).
    pub fn with_bound(start: N, dmax: usize) -> Self {
        assert!(dmax >= 1, "degree bound must be positive");
        MaxDegreeWalk {
            current: start,
            dmax,
            self_loops: 0,
            moves: 0,
            single_draw: false,
        }
    }

    /// Switches the walk to **single-draw proposals**: one uniform index
    /// in `[0, d_max)` both decides the lazy self-loop (`index ≥ d(u)`)
    /// and selects the neighbor ([`WalkableGraph::neighbor_at`]) —
    /// exactly the "pad every state to `d_max` with self-loops, then walk
    /// uniformly" definition executed literally, in half the RNG draws of
    /// the legacy two-draw path. The stationary distribution is
    /// identical (uniform); the RNG *stream* is not, which is why this is
    /// opt-in — the default constructor keeps the bit-exact legacy stream
    /// every committed baseline was produced with.
    pub fn single_draw(mut self) -> Self {
        self.single_draw = true;
        self
    }

    /// Fraction of steps that were self-loops (diagnostic: high values mean
    /// the bound is loose or the graph is very skewed).
    pub fn self_loop_rate(&self) -> f64 {
        let total = self.self_loops + self.moves;
        if total == 0 {
            0.0
        } else {
            self.self_loops as f64 / total as f64
        }
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for MaxDegreeWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let du = g.degree(self.current);
        debug_assert!(du <= self.dmax, "degree bound violated");
        if self.single_draw {
            // One draw: index < d(u) names the neighbor, index >= d(u) is
            // one of the d_max − d(u) padding self-loops.
            if du > 0 {
                let idx = rng.gen_range(0..self.dmax);
                if idx < du {
                    if let Some(v) = g.neighbor_at(self.current, idx) {
                        self.current = v;
                        self.moves += 1;
                        return self.current;
                    }
                }
            }
            self.self_loops += 1;
            return self.current;
        }
        if du > 0 && rng.gen_range(0..self.dmax) < du {
            if let Some(v) = g.sample_neighbor(self.current, rng) {
                self.current = v;
                self.moves += 1;
                return self.current;
            }
        }
        self.self_loops += 1;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::NodeId;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_is_uniform() {
        let g = test_graph(301);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(31);
        let walker = MaxDegreeWalk::new(&osn, NodeId(0));
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.02, "max-degree walk");
    }

    #[test]
    fn loose_bound_remains_unbiased() {
        let g = test_graph(302);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(32);
        // Bound 4× the true maximum: more self-loops, same stationary dist.
        let walker = MaxDegreeWalk::with_bound(NodeId(0), 4 * osn.max_degree_bound());
        let freq = visit_frequencies(
            &osn,
            walker,
            1_200_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.03, "loose-bound max-degree walk");
    }

    #[test]
    fn single_draw_stationary_distribution_is_uniform_too() {
        let g = test_graph(304);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(34);
        let walker = MaxDegreeWalk::new(&osn, NodeId(0)).single_draw();
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.02, "single-draw max-degree walk");
    }

    #[test]
    fn single_draw_consumes_one_rng_value_per_step() {
        use rand::RngCore;
        let g = test_graph(305);
        let osn = SimulatedOsn::new(&g);
        // Reference stream: the raw u64 sequence the walk should consume
        // one element of per step (Lemire rejection retries are
        // vanishingly rare at these tiny spans, and determinism makes any
        // retry identical across the two readers anyway).
        let steps = 1_000;
        let mut raw = StdRng::seed_from_u64(35);
        let mut walked = StdRng::seed_from_u64(35);
        let mut w = MaxDegreeWalk::new(&osn, NodeId(0)).single_draw();
        for _ in 0..steps {
            w.step(&osn, &mut walked);
            raw.next_u64();
        }
        assert_eq!(
            raw.next_u64(),
            walked.next_u64(),
            "single-draw stepping must consume exactly one draw per step"
        );
    }

    #[test]
    fn self_loops_happen_on_skewed_graph() {
        let g = test_graph(303);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(33);
        let mut walker = MaxDegreeWalk::new(&osn, NodeId(0));
        for _ in 0..5_000 {
            walker.step(&osn, &mut rng);
        }
        assert!(walker.self_loop_rate() > 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        MaxDegreeWalk::<NodeId>::with_bound(NodeId(0), 0);
    }
}
