//! Maximum-degree random walk (uniform stationary distribution).

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// The maximum-degree random walk: conceptually, pad every state with
/// self-loops up to the maximum degree `d_max`, then walk uniformly. From
/// state `u` the walk moves to a uniform neighbor with probability
/// `d(u)/d_max` and stays put otherwise, giving a uniform stationary
/// distribution without needing the neighbor's degree (one fewer API call
/// per step than MH, at the cost of self-loop laziness on low-degree
/// states) — the EX-MDRW baseline.
#[derive(Clone, Debug)]
pub struct MaxDegreeWalk<N> {
    current: N,
    dmax: usize,
    self_loops: u64,
    moves: u64,
}

impl<N: Copy> MaxDegreeWalk<N> {
    /// Starts a walk at `start` using the graph's maximum-degree bound.
    pub fn new<G: WalkableGraph<Node = N> + ?Sized>(g: &G, start: N) -> Self {
        let dmax = g.max_degree_bound().max(1);
        MaxDegreeWalk {
            current: start,
            dmax,
            self_loops: 0,
            moves: 0,
        }
    }

    /// Starts a walk with an explicit degree bound (must dominate every
    /// state's degree; a loose bound only slows mixing, it does not bias).
    pub fn with_bound(start: N, dmax: usize) -> Self {
        assert!(dmax >= 1, "degree bound must be positive");
        MaxDegreeWalk {
            current: start,
            dmax,
            self_loops: 0,
            moves: 0,
        }
    }

    /// Fraction of steps that were self-loops (diagnostic: high values mean
    /// the bound is loose or the graph is very skewed).
    pub fn self_loop_rate(&self) -> f64 {
        let total = self.self_loops + self.moves;
        if total == 0 {
            0.0
        } else {
            self.self_loops as f64 / total as f64
        }
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for MaxDegreeWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let du = g.degree(self.current);
        debug_assert!(du <= self.dmax, "degree bound violated");
        if du > 0 && rng.gen_range(0..self.dmax) < du {
            if let Some(v) = g.sample_neighbor(self.current, rng) {
                self.current = v;
                self.moves += 1;
                return self.current;
            }
        }
        self.self_loops += 1;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::NodeId;
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_distribution_is_uniform() {
        let g = test_graph(301);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(31);
        let walker = MaxDegreeWalk::new(&osn, NodeId(0));
        let freq = visit_frequencies(
            &osn,
            walker,
            600_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.02, "max-degree walk");
    }

    #[test]
    fn loose_bound_remains_unbiased() {
        let g = test_graph(302);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(32);
        // Bound 4× the true maximum: more self-loops, same stationary dist.
        let walker = MaxDegreeWalk::with_bound(NodeId(0), 4 * osn.max_degree_bound());
        let freq = visit_frequencies(
            &osn,
            walker,
            1_200_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected = vec![1.0 / g.num_nodes() as f64; g.num_nodes()];
        assert_tv_close(&freq, &expected, 0.03, "loose-bound max-degree walk");
    }

    #[test]
    fn self_loops_happen_on_skewed_graph() {
        let g = test_graph(303);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(33);
        let mut walker = MaxDegreeWalk::new(&osn, NodeId(0));
        for _ in 0..5_000 {
            walker.step(&osn, &mut rng);
        }
        assert!(walker.self_loop_rate() > 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        MaxDegreeWalk::<NodeId>::with_bound(NodeId(0), 0);
    }
}
