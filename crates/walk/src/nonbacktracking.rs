//! Non-backtracking random walk (extension).
//!
//! Lee, Xu & Eun (SIGMETRICS 2012) — cited by the paper as a more
//! efficient alternative to the simple random walk — showed that refusing
//! to immediately reverse an edge reduces the asymptotic variance of
//! degree-proportional estimators while *keeping the same stationary
//! distribution* `π(u) ∝ d(u)`. We include it as an optional drop-in
//! replacement for [`crate::SimpleWalk`] in the samplers and ablation
//! benches.

use rand::Rng;

use crate::traits::{WalkableGraph, Walker};

/// A random walk that never traverses the edge it just arrived on, except
/// when the current state has degree 1 (where backtracking is forced).
///
/// Drawing a uniform neighbor ≠ previous is done by rejection, which takes
/// `d/(d−1) ≤ 2` expected draws; each retry re-invokes
/// [`WalkableGraph::sample_neighbor`] (extra *raw* API calls, but on a
/// cached crawl the node's list is already cached, so the distinct-call
/// budget is unaffected).
#[derive(Clone, Debug)]
pub struct NonBacktrackingWalk<N> {
    current: N,
    previous: Option<N>,
}

impl<N: Copy + Eq> NonBacktrackingWalk<N> {
    /// Starts a walk at `start` with no history.
    pub fn new(start: N) -> Self {
        NonBacktrackingWalk {
            current: start,
            previous: None,
        }
    }

    /// The state visited before the current one, if any.
    pub fn previous(&self) -> Option<N> {
        self.previous
    }
}

impl<G: WalkableGraph + ?Sized> Walker<G> for NonBacktrackingWalk<G::Node> {
    fn current(&self) -> G::Node {
        self.current
    }

    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node {
        let d = g.degree(self.current);
        if d == 0 {
            return self.current;
        }
        let next = if d == 1 {
            // Forced move (possibly backtracking).
            g.sample_neighbor(self.current, rng)
        } else {
            // Rejection-sample a neighbor different from `previous`.
            loop {
                let cand = g.sample_neighbor(self.current, rng);
                match (cand, self.previous) {
                    (Some(c), Some(p)) if c == p => continue,
                    _ => break cand,
                }
            }
        };
        if let Some(v) = next {
            self.previous = Some(self.current);
            self.current = v;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::{assert_tv_close, test_graph, visit_frequencies};
    use labelcount_graph::{GraphBuilder, NodeId};
    use labelcount_osn::SimulatedOsn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_backtracks_when_degree_allows() {
        let g = test_graph(601);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(61);
        let mut walker = NonBacktrackingWalk::new(NodeId(0));
        let mut prev: Option<NodeId> = None;
        let mut cur = NodeId(0);
        for _ in 0..2_000 {
            let next = walker.step(&osn, &mut rng);
            if let Some(p) = prev {
                if g.degree(cur) > 1 {
                    assert_ne!(next, p, "backtracked at degree {}", g.degree(cur));
                }
            }
            prev = Some(cur);
            cur = next;
        }
    }

    #[test]
    fn stationary_distribution_still_degree_proportional() {
        let g = test_graph(602);
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(62);
        let walker = NonBacktrackingWalk::new(NodeId(0));
        let freq = visit_frequencies(
            &osn,
            walker,
            400_000,
            g.num_nodes(),
            |u| u.index(),
            &mut rng,
        );
        let expected: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 / g.degree_sum() as f64)
            .collect();
        assert_tv_close(&freq, &expected, 0.02, "non-backtracking walk");
    }

    #[test]
    fn degree_one_forces_backtrack() {
        // Path 0-1: from 1 the only move is back to 0.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(63);
        let mut walker = NonBacktrackingWalk::new(NodeId(0));
        assert_eq!(walker.step(&osn, &mut rng), NodeId(1));
        assert_eq!(walker.step(&osn, &mut rng), NodeId(0));
        assert_eq!(walker.previous(), Some(NodeId(1)));
    }
}
