//! The walkable-state-space abstraction and the walker interface.

use labelcount_graph::NodeId;
use labelcount_osn::{LineGraphView, LineNode, OsnApi, OsnApiExt, SimulatedOsn};
use rand::Rng;

/// A state space a random walk can move on through restricted access.
///
/// Implemented for [`SimulatedOsn`] (states = users) and for
/// [`LineGraphView`] (states = friendships, i.e. nodes of the implicit line
/// graph `G'`). Every operation maps to API calls on the underlying OSN, so
/// walks are automatically accounted and budget-limited.
pub trait WalkableGraph {
    /// The state (node) type.
    type Node: Copy + Eq + std::fmt::Debug;

    /// Degree of `u` in this state space.
    fn degree(&self, u: Self::Node) -> usize;

    /// A uniformly random neighbor of `u`, or `None` if `u` is isolated.
    fn sample_neighbor<R: Rng + ?Sized>(&self, u: Self::Node, rng: &mut R) -> Option<Self::Node>;

    /// A starting state for a walk. Not necessarily uniform — walks burn
    /// in past the start.
    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Node;

    /// The `i`-th neighbor of `u` in the space's canonical neighbor order
    /// (the order [`WalkableGraph::sample_neighbor`] indexes into), or
    /// `None` when `i >= degree(u)`. This is the building block of
    /// **single-draw padded proposals**
    /// ([`crate::MaxDegreeWalk::single_draw`],
    /// [`crate::GmdWalk::single_draw`]): one uniform index both decides
    /// the lazy self-loop *and* selects the neighbor, halving the RNG
    /// draws of the maximum-degree walk family.
    fn neighbor_at(&self, u: Self::Node, i: usize) -> Option<Self::Node>;

    /// A start state drawn **degree-proportionally** — the stationary
    /// distribution of the simple random walk, so a walk started here is
    /// already mixed and needs zero burn-in.
    ///
    /// The default falls back to [`WalkableGraph::random_node`], consuming
    /// the **bit-identical RNG stream** the legacy uniform start consumed:
    /// restricted-access spaces (the OSN API, the implicit line graph)
    /// cannot precompute the degree distribution without crawling it, and
    /// silently changing their draw pattern would shift every downstream
    /// estimate. Full-knowledge evaluation-side spaces
    /// ([`crate::DenseGraph`]) override this with an O(1) alias-table draw
    /// ([`labelcount_graph::AliasTable`]).
    fn stationary_start<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Node {
        self.random_node(rng)
    }

    /// An upper bound on the maximum degree of the state space, used by
    /// the maximum-degree walks.
    fn max_degree_bound(&self) -> usize;

    /// Number of states (`|V|` for the OSN, `|E|` for the line graph) —
    /// prior knowledge.
    fn num_states(&self) -> usize;
}

impl WalkableGraph for SimulatedOsn<'_> {
    type Node = NodeId;

    fn degree(&self, u: NodeId) -> usize {
        OsnApi::degree(self, u)
    }

    fn sample_neighbor<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        OsnApiExt::sample_neighbor(self, u, rng)
    }

    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        OsnApiExt::random_node(self, rng)
    }

    fn neighbor_at(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.neighbors(u).get(i).copied()
    }

    fn max_degree_bound(&self) -> usize {
        OsnApi::max_degree_bound(self)
    }

    fn num_states(&self) -> usize {
        OsnApi::num_nodes(self)
    }
}

/// Any `dyn OsnApi` handle is walkable: this is how the estimators (which
/// take `&dyn OsnApi`) run their walks over the direct simulation and the
/// cached sessions with one compiled code path.
impl WalkableGraph for dyn OsnApi + '_ {
    type Node = NodeId;

    fn degree(&self, u: NodeId) -> usize {
        OsnApi::degree(self, u)
    }

    fn sample_neighbor<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        OsnApiExt::sample_neighbor(self, u, rng)
    }

    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        OsnApiExt::random_node(self, rng)
    }

    fn neighbor_at(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.neighbors(u).get(i).copied()
    }

    fn max_degree_bound(&self) -> usize {
        OsnApi::max_degree_bound(self)
    }

    fn num_states(&self) -> usize {
        self.num_nodes()
    }
}

impl<A: OsnApi + ?Sized> WalkableGraph for LineGraphView<'_, A> {
    type Node = LineNode;

    fn degree(&self, e: LineNode) -> usize {
        LineGraphView::degree(self, e)
    }

    fn sample_neighbor<R: Rng + ?Sized>(&self, e: LineNode, rng: &mut R) -> Option<LineNode> {
        LineGraphView::sample_neighbor(self, e, rng)
    }

    fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> LineNode {
        self.random_start(rng)
    }

    fn neighbor_at(&self, e: LineNode, i: usize) -> Option<LineNode> {
        LineGraphView::neighbor_at(self, e, i)
    }

    fn max_degree_bound(&self) -> usize {
        LineGraphView::max_degree_bound(self)
    }

    fn num_states(&self) -> usize {
        self.num_nodes()
    }
}

/// A random walk over a [`WalkableGraph`].
///
/// Walkers hold only their own state (current node, walk-specific memory);
/// the graph is passed per call so one graph handle can serve many walkers.
pub trait Walker<G: WalkableGraph + ?Sized> {
    /// The state the walk is currently at.
    fn current(&self) -> G::Node;

    /// Advances one step and returns the new state. Lazy walks may stay
    /// put; the returned state is the walk's position after the step
    /// either way.
    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) -> G::Node;

    /// Runs `steps` steps discarding the visited states — the burn-in that
    /// takes the walk to (approximate) stationarity before sampling.
    fn burn_in<R: Rng + ?Sized>(&mut self, g: &G, steps: usize, rng: &mut R) {
        for _ in 0..steps {
            self.step(g, rng);
        }
    }

    /// Advances `buf.len()` steps, writing the visited states into `buf` in
    /// order. Equivalent to calling [`Walker::step`] once per slot, but
    /// batched so implementations can amortize per-step overhead (monomorphic
    /// dispatch, walker-state loads/stores) across the whole buffer; consumers
    /// that sample in bulk (throughput harnesses, vectorized estimators)
    /// should prefer it over a `step` loop. The default just loops `step`, so
    /// every walker gets the API with identical visit sequences either way.
    fn steps_into<R: Rng + ?Sized>(&mut self, g: &G, buf: &mut [G::Node], rng: &mut R) {
        for slot in buf.iter_mut() {
            *slot = self.step(g, rng);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for the per-walk stationarity tests.

    use labelcount_graph::gen::barabasi_albert;
    use labelcount_graph::LabeledGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small connected BA graph with degree skew.
    pub fn test_graph(seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        barabasi_albert(60, 3, &mut rng)
    }

    /// Runs `walker` for `steps` steps on `g` and returns per-node visit
    /// frequencies (including repeats from lazy self-loops).
    pub fn visit_frequencies<G, W>(
        g: &G,
        mut walker: W,
        steps: usize,
        num_nodes: usize,
        index: impl Fn(G::Node) -> usize,
        rng: &mut StdRng,
    ) -> Vec<f64>
    where
        G: super::WalkableGraph,
        W: super::Walker<G>,
    {
        let mut counts = vec![0usize; num_nodes];
        for _ in 0..steps {
            let u = walker.step(g, rng);
            counts[index(u)] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / steps as f64)
            .collect()
    }

    /// Asserts `observed` is close to `expected` in total-variation
    /// distance.
    pub fn assert_tv_close(observed: &[f64], expected: &[f64], tol: f64, what: &str) {
        let tv: f64 = observed
            .iter()
            .zip(expected)
            .map(|(o, e)| (o - e).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < tol, "{what}: TV distance {tv} >= {tol}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labelcount_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simulated_osn_is_walkable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(WalkableGraph::degree(&osn, NodeId(1)), 2);
        assert_eq!(WalkableGraph::num_states(&osn), 3);
        assert_eq!(WalkableGraph::max_degree_bound(&osn), 2);
        let n = WalkableGraph::sample_neighbor(&osn, NodeId(0), &mut rng).unwrap();
        assert_eq!(n, NodeId(1));
    }

    #[test]
    fn default_stationary_start_replays_the_uniform_stream() {
        // Restricted-access spaces fall back to `random_node` for
        // `stationary_start`, consuming the bit-identical RNG stream — the
        // compatibility contract alias-capable spaces are exempt from.
        let mut b = GraphBuilder::new(5);
        for v in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(v));
        }
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let mut legacy = StdRng::seed_from_u64(33);
        let mut stationary = StdRng::seed_from_u64(33);
        for _ in 0..32 {
            assert_eq!(
                WalkableGraph::random_node(&osn, &mut legacy),
                WalkableGraph::stationary_start(&osn, &mut stationary),
            );
        }
        use rand::RngCore;
        assert_eq!(legacy.next_u64(), stationary.next_u64());
    }

    #[test]
    fn neighbor_at_indexes_the_sampling_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(0), NodeId(3));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        for i in 0..3 {
            assert_eq!(
                WalkableGraph::neighbor_at(&osn, NodeId(0), i),
                Some(NodeId(i as u32 + 1))
            );
        }
        assert_eq!(WalkableGraph::neighbor_at(&osn, NodeId(0), 3), None);
        assert_eq!(
            WalkableGraph::neighbor_at(&osn, NodeId(1), 0),
            Some(NodeId(0))
        );
        assert_eq!(WalkableGraph::neighbor_at(&osn, NodeId(1), 1), None);
    }

    #[test]
    fn line_graph_is_walkable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let osn = SimulatedOsn::new(&g);
        let lg = LineGraphView::new(&osn);
        let mut rng = StdRng::seed_from_u64(2);
        let e = WalkableGraph::random_node(&lg, &mut rng);
        assert_eq!(WalkableGraph::degree(&lg, e), 1);
        assert_eq!(WalkableGraph::num_states(&lg), 2);
        let n = WalkableGraph::sample_neighbor(&lg, e, &mut rng).unwrap();
        assert_ne!(n, e);
    }
}
