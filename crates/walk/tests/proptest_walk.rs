//! Property-based tests for the walk engine: every walker stays on edges
//! (or in place), and the mixing-time machinery conserves probability.

use labelcount_graph::gen::barabasi_albert;
use labelcount_graph::{LabeledGraph, NodeId};
use labelcount_osn::SimulatedOsn;
use labelcount_walk::mixing::{
    mixing_time_from_start, stationary_distribution, step_distribution, total_variation,
};
use labelcount_walk::{
    DenseGraph, GmdWalk, MaxDegreeWalk, MetropolisHastingsWalk, NonBacktrackingWalk, RcmhWalk,
    SimpleWalk, WalkableGraph, Walker,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_ba() -> impl Strategy<Value = LabeledGraph> {
    (10usize..60, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        barabasi_albert(n.max(m + 1), m, &mut rng)
    })
}

/// Checks that `steps` transitions of `walker` all follow edges of `g` or
/// stay in place (lazy walks).
fn assert_walk_on_edges<W>(g: &LabeledGraph, mut walker: W, seed: u64, steps: usize)
where
    W: for<'g> Walker<SimulatedOsn<'g>>,
{
    let osn = SimulatedOsn::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prev = walker.current();
    for _ in 0..steps {
        let next = walker.step(&osn, &mut rng);
        assert!(
            next == prev || g.has_edge(prev, next),
            "illegal move {prev} -> {next}"
        );
        prev = next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_walker_respects_the_graph(g in arb_ba(), seed in any::<u64>()) {
        let start = NodeId(0);
        assert_walk_on_edges(&g, SimpleWalk::new(start), seed, 100);
        assert_walk_on_edges(&g, MetropolisHastingsWalk::new(start), seed, 100);
        assert_walk_on_edges(&g, NonBacktrackingWalk::new(start), seed, 100);
        assert_walk_on_edges(&g, RcmhWalk::new(start, 0.3), seed, 100);
        assert_walk_on_edges(&g, GmdWalk::new(start, 5), seed, 100);
        let osn = SimulatedOsn::new(&g);
        assert_walk_on_edges(&g, MaxDegreeWalk::new(&osn, start), seed, 100);
    }

    #[test]
    fn transition_operator_conserves_mass(g in arb_ba(), start in 0u32..10) {
        let start = NodeId(start % g.num_nodes() as u32);
        let mut cur = vec![0.0; g.num_nodes()];
        cur[start.index()] = 1.0;
        let mut next = vec![0.0; g.num_nodes()];
        for _ in 0..5 {
            step_distribution(&g, &cur, &mut next);
            prop_assert!((next.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(next.iter().all(|&p| p >= 0.0));
            std::mem::swap(&mut cur, &mut next);
        }
    }

    #[test]
    fn stationary_distribution_is_fixed_point(g in arb_ba()) {
        let pi = stationary_distribution(&g);
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut next = vec![0.0; g.num_nodes()];
        step_distribution(&g, &pi, &mut next);
        prop_assert!(total_variation(&pi, &next) < 1e-9);
    }

    #[test]
    fn tv_distance_is_a_metric_on_distributions(g in arb_ba()) {
        let pi = stationary_distribution(&g);
        let mut point = vec![0.0; g.num_nodes()];
        point[0] = 1.0;
        // Identity, symmetry, range.
        prop_assert_eq!(total_variation(&pi, &pi), 0.0);
        let d1 = total_variation(&pi, &point);
        let d2 = total_variation(&point, &pi);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn mixing_time_is_monotone_in_epsilon(g in arb_ba()) {
        // Looser epsilon can only mix sooner.
        let loose = mixing_time_from_start(&g, NodeId(0), 1e-1, 5_000);
        let tight = mixing_time_from_start(&g, NodeId(0), 1e-3, 5_000);
        if let (Some(l), Some(t)) = (loose, tight) {
            prop_assert!(l <= t, "loose {l} > tight {t}");
        }
    }

    #[test]
    fn single_draw_walks_stay_on_edges_too(g in arb_ba(), seed in any::<u64>()) {
        let start = NodeId(0);
        assert_walk_on_edges(&g, GmdWalk::new(start, 5).single_draw(), seed, 100);
        let osn = SimulatedOsn::new(&g);
        assert_walk_on_edges(&g, MaxDegreeWalk::new(&osn, start).single_draw(), seed, 100);
    }

    /// The full-knowledge [`DenseGraph`] must be RNG-stream compatible
    /// with the restricted-access simulation: the same walker at the same
    /// seed visits the bit-identical node sequence on either space, in
    /// both the legacy and single-draw proposal modes.
    #[test]
    fn dense_graph_replays_simulated_walks(g in arb_ba(), seed in any::<u64>()) {
        let dense = DenseGraph::new(&g);
        let osn = SimulatedOsn::new(&g);
        macro_rules! check_pair {
            ($name:literal, $mk:expr) => {{
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut wa = $mk;
                let a: Vec<NodeId> = (0..200).map(|_| wa.step(&dense, &mut rng_a)).collect();
                let mut rng_b = StdRng::seed_from_u64(seed);
                let mut wb = $mk;
                let b: Vec<NodeId> = (0..200).map(|_| wb.step(&osn, &mut rng_b)).collect();
                prop_assert_eq!(a, b, "{} diverged across spaces", $name);
            }};
        }
        check_pair!("simple", SimpleWalk::new(NodeId(0)));
        check_pair!("gmd", GmdWalk::new(NodeId(0), 4));
        check_pair!("gmd single-draw", GmdWalk::new(NodeId(0), 4).single_draw());
        check_pair!("maxdeg", MaxDegreeWalk::with_bound(NodeId(0), dense.max_degree_bound()));
        check_pair!(
            "maxdeg single-draw",
            MaxDegreeWalk::with_bound(NodeId(0), dense.max_degree_bound()).single_draw()
        );
    }

    /// `neighbor_at` is a bijection onto the neighbor set on every space,
    /// so single-draw proposals are exactly uniform.
    #[test]
    fn neighbor_at_enumerates_neighbors_exactly(g in arb_ba(), u in 0u32..60) {
        let u = NodeId(u % g.num_nodes() as u32);
        let dense = DenseGraph::new(&g);
        let osn = SimulatedOsn::new(&g);
        let d = g.degree(u);
        let via_dense: Vec<NodeId> =
            (0..d).map(|i| dense.neighbor_at(u, i).unwrap()).collect();
        let via_osn: Vec<NodeId> =
            (0..d).map(|i| WalkableGraph::neighbor_at(&osn, u, i).unwrap()).collect();
        prop_assert_eq!(&via_dense, &via_osn);
        prop_assert_eq!(via_dense.as_slice(), g.neighbors(u));
        prop_assert_eq!(dense.neighbor_at(u, d), None);
    }
}
