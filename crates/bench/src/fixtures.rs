//! Lazily built miniature datasets shared by the bench targets.
//!
//! Benchmarks need stable, quickly built inputs: each fixture is a scaled
//! surrogate dataset (same generators and label calibration as the full
//! harness) built once per process.

use std::sync::OnceLock;

use labelcount_experiments::datasets::{build, Dataset, DatasetKind};

/// Scale used for bench datasets (≈ 1–3k nodes each).
pub const BENCH_SCALE: f64 = 0.02;

/// Seed used for bench datasets.
pub const BENCH_SEED: u64 = 2018;

fn cell(kind: DatasetKind, slot: &'static OnceLock<Dataset>) -> &'static Dataset {
    slot.get_or_init(|| build(kind, BENCH_SCALE, BENCH_SEED))
}

/// The miniature facebook-like dataset (binary labels, abundant target).
pub fn facebook_like() -> &'static Dataset {
    static SLOT: OnceLock<Dataset> = OnceLock::new();
    cell(DatasetKind::FacebookLike, &SLOT)
}

/// The miniature googleplus-like dataset.
pub fn googleplus_like() -> &'static Dataset {
    static SLOT: OnceLock<Dataset> = OnceLock::new();
    cell(DatasetKind::GooglePlusLike, &SLOT)
}

/// The miniature pokec-like dataset (location labels, rare targets).
pub fn pokec_like() -> &'static Dataset {
    static SLOT: OnceLock<Dataset> = OnceLock::new();
    cell(DatasetKind::PokecLike, &SLOT)
}

/// The miniature orkut-like dataset (degree-bucket labels).
pub fn orkut_like() -> &'static Dataset {
    static SLOT: OnceLock<Dataset> = OnceLock::new();
    cell(DatasetKind::OrkutLike, &SLOT)
}

/// The miniature livejournal-like dataset.
pub fn livejournal_like() -> &'static Dataset {
    static SLOT: OnceLock<Dataset> = OnceLock::new();
    cell(DatasetKind::LiveJournalLike, &SLOT)
}

/// All five fixtures, in Table 1 order.
pub fn all() -> [&'static Dataset; 5] {
    [
        facebook_like(),
        googleplus_like(),
        pokec_like(),
        orkut_like(),
        livejournal_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_have_targets() {
        for d in all() {
            assert!(d.graph.num_nodes() > 0);
            assert!(!d.targets.is_empty(), "{}", d.name);
        }
    }

    #[test]
    fn fixtures_are_cached() {
        let a = facebook_like() as *const Dataset;
        let b = facebook_like() as *const Dataset;
        assert_eq!(a, b);
    }
}
