//! Shared fixtures for the labelcount Criterion benchmarks.
//!
//! Each bench target under `benches/` regenerates one family of the
//! paper's evaluation artifacts at benchmark-friendly scale (DESIGN.md §5
//! maps tables/figures to targets):
//!
//! | bench target | paper artifact |
//! |--------------|----------------|
//! | `walks` | walk-step throughput (substrate for everything) |
//! | `samplers` | per-estimate cost of all ten algorithms |
//! | `tables_nrmse` | Tables 4–17 (NRMSE sweeps per dataset family) |
//! | `figures_sweep` | Figures 1–2 (NRMSE vs relative target count) |
//! | `bounds` | Tables 18–22 (Theorem 4.1–4.5 bounds) |
//! | `ablations` | thinning/α/δ/non-backtracking design knobs |

pub mod fixtures;
