//! Ablation benches for the design knobs DESIGN.md §9 calls out:
//!
//! * HT thinning fraction (0 / paper's 2.5% / 10%) — cost and, via the
//!   printed NRMSE side-channel, the accuracy trade-off;
//! * EX-RCMH `α` sweep (Li et al. recommend `[0, 0.3]`);
//! * EX-GMD `δ` sweep (`[0.3, 0.7]`);
//! * non-backtracking vs simple walk as the NeighborSample engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::{Algorithm, ExGmd, ExRcmh, NsHorvitzThompson, RunConfig};
use labelcount_osn::{OsnApiExt, SimulatedOsn};
use labelcount_walk::{NonBacktrackingWalk, SimpleWalk, Walker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_thinning(c: &mut Criterion) {
    let d = fixtures::googleplus_like();
    let target = d.targets[0].label;
    let budget = d.graph.num_nodes() / 20;
    let mut group = c.benchmark_group("ablations/ht_thinning");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for frac in [0.0, 0.025, 0.1] {
        let cfg = RunConfig {
            burn_in: d.burn_in,
            thinning_frac: frac,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("frac_{frac}")),
            &cfg,
            |b, cfg| {
                let mut rng = StdRng::seed_from_u64(31);
                b.iter(|| {
                    let osn = SimulatedOsn::new(&d.graph);
                    black_box(
                        NsHorvitzThompson
                            .estimate(&osn, target, budget, cfg, &mut rng)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_rcmh_alpha(c: &mut Criterion) {
    let d = fixtures::facebook_like();
    let target = d.targets[0].label;
    let budget = d.graph.num_nodes() / 20;
    let cfg = RunConfig {
        burn_in: d.burn_in,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("ablations/rcmh_alpha");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for alpha in [0.0, 0.1, 0.2, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha_{alpha}")),
            &alpha,
            |b, &alpha| {
                let alg = ExRcmh::new(alpha);
                let mut rng = StdRng::seed_from_u64(37);
                b.iter(|| {
                    let osn = SimulatedOsn::new(&d.graph);
                    black_box(alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_gmd_delta(c: &mut Criterion) {
    let d = fixtures::facebook_like();
    let target = d.targets[0].label;
    let budget = d.graph.num_nodes() / 20;
    let cfg = RunConfig {
        burn_in: d.burn_in,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("ablations/gmd_delta");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for delta in [0.3, 0.5, 0.7] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("delta_{delta}")),
            &delta,
            |b, &delta| {
                let alg = ExGmd::new(delta);
                let mut rng = StdRng::seed_from_u64(41);
                b.iter(|| {
                    let osn = SimulatedOsn::new(&d.graph);
                    black_box(alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_nonbacktracking(c: &mut Criterion) {
    // Non-backtracking walks keep the degree-proportional stationary
    // distribution but decorrelate faster (Lee et al.); compare raw walk
    // cost per step against the simple walk at equal step counts.
    let d = fixtures::orkut_like();
    let g = &d.graph;
    let mut group = c.benchmark_group("ablations/nonbacktracking_engine");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("simple_walk_2k_steps", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(43);
            let mut w = SimpleWalk::new(OsnApiExt::random_node(&osn, &mut rng));
            for _ in 0..2_000 {
                black_box(w.step(&osn, &mut rng));
            }
            osn.api_calls()
        })
    });
    group.bench_function("non_backtracking_2k_steps", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(43);
            let mut w = NonBacktrackingWalk::new(OsnApiExt::random_node(&osn, &mut rng));
            for _ in 0..2_000 {
                black_box(w.step(&osn, &mut rng));
            }
            osn.api_calls()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_thinning,
    bench_rcmh_alpha,
    bench_gmd_delta,
    bench_nonbacktracking
);
criterion_main!(benches);
