//! Regenerates the Figure 1–2 computation (NRMSE of the five proposed
//! estimators vs the relative target-edge count at the 5%|V| budget) at
//! benchmark scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::algorithms;
use labelcount_experiments::datasets::Dataset;
use labelcount_experiments::runner::{nrmse_sweep, SweepConfig};
use std::hint::black_box;

/// One frequency sweep: all of the dataset's calibrated targets at the
/// 5%|V| budget with the five proposed algorithms.
fn figure_once(d: &Dataset, seed: u64) -> f64 {
    let cfg = SweepConfig {
        reps: 5,
        threads: 4,
        seed,
        ..SweepConfig::default()
    };
    let budget = d.graph.num_nodes() / 20;
    let algs = algorithms::proposed();
    let mut acc = 0.0;
    for t in &d.targets {
        let rows = nrmse_sweep(&d.graph, d.burn_in, t.label, t.f, &[budget], &algs, &cfg);
        acc += rows.iter().map(|r| r.nrmse[0]).sum::<f64>();
    }
    acc
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_with_input(
        BenchmarkId::from_parameter("fig1_orkut"),
        fixtures::orkut_like(),
        |b, d| b.iter(|| black_box(figure_once(d, 19))),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("fig2_livejournal"),
        fixtures::livejournal_like(),
        |b, d| b.iter(|| black_box(figure_once(d, 23))),
    );
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
