//! Per-estimate cost of all ten algorithms at a fixed 5%|V| API budget —
//! the work behind every cell of Tables 4–17.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::{algorithms, RunConfig};
use labelcount_osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers/estimate_5pct");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for d in [fixtures::facebook_like(), fixtures::pokec_like()] {
        let target = d.targets[0].label;
        let budget = d.graph.num_nodes() / 20;
        let cfg = RunConfig {
            burn_in: d.burn_in,
            ..RunConfig::default()
        };
        for alg in algorithms::all_paper(0.2, 0.5) {
            group.bench_with_input(
                BenchmarkId::new(alg.abbrev(), d.name),
                &budget,
                |b, &budget| {
                    let mut rng = StdRng::seed_from_u64(11);
                    b.iter(|| {
                        let osn = SimulatedOsn::new(&d.graph);
                        black_box(alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap())
                    })
                },
            );
        }
    }
    group.finish();

    // Budget scaling of the two proposed samplers (0.5% → 5% of |V|).
    let d = fixtures::googleplus_like();
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: d.burn_in,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("samplers/budget_scaling");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for pct_half in [1usize, 4, 10] {
        let budget = (d.graph.num_nodes() * pct_half / 200).max(1);
        for alg in algorithms::proposed().into_iter().take(2) {
            group.bench_with_input(
                BenchmarkId::new(alg.abbrev(), format!("{:.1}pct", pct_half as f64 / 2.0)),
                &budget,
                |b, &budget| {
                    let mut rng = StdRng::seed_from_u64(13);
                    b.iter(|| {
                        let osn = SimulatedOsn::new(&d.graph);
                        black_box(alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
