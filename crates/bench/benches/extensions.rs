//! Benches for the extension estimators (DESIGN.md §2 items 9b/9c):
//! label-refined wedge/triangle counting (the paper's §6 future work) and
//! `|V|`/`|E|` estimation via walk collisions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::motifs::{estimate_labeled_triangles, estimate_labeled_wedges};
use labelcount_core::size::estimate_graph_size;
use labelcount_graph::motifs::{count_labeled_triangles, count_labeled_wedges, TargetTriple};
use labelcount_graph::LabelId;
use labelcount_osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn triple() -> TargetTriple {
    TargetTriple::new(LabelId(1), LabelId(2), LabelId(3))
}

fn bench_motif_estimators(c: &mut Criterion) {
    let d = fixtures::pokec_like();
    let budget = d.graph.num_nodes() / 10;
    let mut group = c.benchmark_group("extensions/motifs");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    group.bench_with_input(BenchmarkId::from_parameter("wedges"), &budget, |b, &k| {
        let mut rng = StdRng::seed_from_u64(51);
        b.iter(|| {
            let osn = SimulatedOsn::new(&d.graph);
            black_box(estimate_labeled_wedges(&osn, triple(), k, d.burn_in, &mut rng).unwrap())
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("triangles"),
        &budget,
        |b, &k| {
            let mut rng = StdRng::seed_from_u64(53);
            b.iter(|| {
                let osn = SimulatedOsn::new(&d.graph);
                black_box(
                    estimate_labeled_triangles(&osn, triple(), k, d.burn_in, &mut rng).unwrap(),
                )
            })
        },
    );
    group.finish();

    // Exact counters (the evaluation-side full scans).
    let mut group = c.benchmark_group("extensions/exact_motif_scan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("wedges", |b| {
        b.iter(|| black_box(count_labeled_wedges(&d.graph, triple())))
    });
    group.bench_function("triangles", |b| {
        b.iter(|| black_box(count_labeled_triangles(&d.graph, triple())))
    });
    group.finish();
}

fn bench_size_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/size_estimation");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for d in [fixtures::facebook_like(), fixtures::orkut_like()] {
        let k = d.graph.num_nodes(); // walk length = |V| samples
        group.bench_with_input(BenchmarkId::from_parameter(d.name), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(57);
            b.iter(|| {
                let osn = SimulatedOsn::new(&d.graph);
                black_box(estimate_graph_size(&osn, k, d.burn_in, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_motif_estimators, bench_size_estimation);
criterion_main!(benches);
