//! Walk-step throughput for every walker, on the OSN and on the implicit
//! line graph — the substrate cost behind all tables.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use labelcount_bench::fixtures;
use labelcount_osn::{LineGraphView, LineNode, OsnApiExt, SimulatedOsn};
use labelcount_walk::{
    GmdWalk, MaxDegreeWalk, MetropolisHastingsWalk, NonBacktrackingWalk, RcmhWalk, SimpleWalk,
    Walker,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const STEPS: usize = 1_000;

fn bench_walks(c: &mut Criterion) {
    let d = fixtures::facebook_like();
    let g = &d.graph;
    let mut group = c.benchmark_group("walks/osn");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("simple", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(1);
            let mut w = SimpleWalk::new(OsnApiExt::random_node(&osn, &mut rng));
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.bench_function("metropolis_hastings", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(2);
            let mut w = MetropolisHastingsWalk::new(OsnApiExt::random_node(&osn, &mut rng));
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.bench_function("max_degree", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(3);
            let start = OsnApiExt::random_node(&osn, &mut rng);
            let mut w = MaxDegreeWalk::new(&osn, start);
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.bench_function("rcmh_alpha02", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(4);
            let mut w = RcmhWalk::new(OsnApiExt::random_node(&osn, &mut rng), 0.2);
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.bench_function("gmd_delta05", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(5);
            let start = OsnApiExt::random_node(&osn, &mut rng);
            let mut w = GmdWalk::with_delta(&osn, start, 0.5);
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.bench_function("non_backtracking", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let mut rng = StdRng::seed_from_u64(6);
            let mut w = NonBacktrackingWalk::new(OsnApiExt::random_node(&osn, &mut rng));
            for _ in 0..STEPS {
                black_box(w.step(&osn, &mut rng));
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("walks/line_graph");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("simple", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let lg = LineGraphView::new(&osn);
            let mut rng = StdRng::seed_from_u64(7);
            let mut w = SimpleWalk::<LineNode>::new(lg.random_start(&mut rng));
            for _ in 0..STEPS {
                black_box(w.step(&lg, &mut rng));
            }
        })
    });
    group.bench_function("metropolis_hastings", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(g);
            let lg = LineGraphView::new(&osn);
            let mut rng = StdRng::seed_from_u64(8);
            let mut w = MetropolisHastingsWalk::<LineNode>::new(lg.random_start(&mut rng));
            for _ in 0..STEPS {
                black_box(w.step(&lg, &mut rng));
            }
        })
    });
    group.finish();

    // Per-step dispatch vs the batched `steps_into` path, on identical RNG
    // streams — the comparison the perf harness (`labelcount-perf`) records
    // as `per_step_ns` / `batched_ns` in every BENCH_*.json. Setup (fresh
    // OSN wrapper, seeded RNG, output buffer) is excluded via iter_batched.
    let mut group = c.benchmark_group("walks/batched_vs_per_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("simple_per_step", |b| {
        b.iter_batched(
            || (SimulatedOsn::new(g), StdRng::seed_from_u64(9)),
            |(osn, mut rng)| {
                let mut w = SimpleWalk::new(OsnApiExt::random_node(&osn, &mut rng));
                let mut last = Walker::<SimulatedOsn>::current(&w);
                for _ in 0..STEPS {
                    last = w.step(&osn, &mut rng);
                }
                black_box(last)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("simple_batched", |b| {
        b.iter_batched_ref(
            || {
                let osn = SimulatedOsn::new(g);
                let rng = StdRng::seed_from_u64(9);
                let buf = vec![labelcount_graph::NodeId(0); STEPS];
                (osn, rng, buf)
            },
            |(osn, rng, buf)| {
                let mut w = SimpleWalk::new(OsnApiExt::random_node(osn, rng));
                w.steps_into(osn, buf, rng);
                black_box(buf[STEPS - 1])
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
