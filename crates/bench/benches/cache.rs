//! The memory-hierarchy hot path: per-logical-call cost of the cached OSN
//! access layer, level by level — plus the alias-table start sampler
//! against its O(log n) predecessor.
//!
//! This is the bench behind the ISSUE-5 acceptance bar: the session-L1
//! hit path (`hit_path/l1_hit`) must be at least 2× faster than the
//! shared-L2 hit path (`hit_path/l2_hit`), because after PR 3 the cache
//! absorbs ~97% of logical calls and the hit cost *is* the cost of a
//! logical call. Every benchmark touches the same probe set in the same
//! order, so the only variable is which layer serves the hit:
//!
//! * `uncached_direct` — `SimulatedOsn` borrowing straight from the CSR
//!   arrays (the floor: one bounds check and a `Cell` bump);
//! * `l2_hit` — a session with the L1 disabled: shard hash, `RwLock`
//!   read-lock, index probe, `Arc` clone + drop per call;
//! * `l1_hit` — the default session: direct-mapped probe and a non-atomic
//!   `Rc` clone + drop per call, no lock, no atomics;
//! * `cold_miss_fill` — the miss path (backend fetch + both fills),
//!   measured per *distinct* node over a fresh cache each iteration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use labelcount_bench::fixtures;
use labelcount_graph::{AliasTable, NodeId};
use labelcount_osn::{CacheConfig, CachedOsn, GraphOsn, OsnApi, SimulatedOsn};
use labelcount_walk::{DenseGraph, WalkableGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Upper bound on the probe set (clamped to half the fixture's nodes so
/// every probe id is a real, distinct node).
const MAX_PROBE_NODES: u32 = 256;
/// Lookups per measured iteration: PROBE_ROUNDS passes over the probe set.
const PROBE_ROUNDS: usize = 200;

fn probe_loop(api: &dyn OsnApi, probe_nodes: u32) -> usize {
    let mut acc = 0usize;
    for _ in 0..PROBE_ROUNDS {
        for u in 0..probe_nodes {
            acc += api.neighbors(NodeId(u)).len();
        }
    }
    acc
}

fn bench_hit_path(c: &mut Criterion) {
    let d = fixtures::facebook_like();
    let g = &d.graph;
    let probe_nodes = (g.num_nodes() as u32 / 2).clamp(1, MAX_PROBE_NODES);

    let mut group = c.benchmark_group("cache/hit_path");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("uncached_direct", |b| {
        let osn = SimulatedOsn::new(g);
        b.iter(|| black_box(probe_loop(&osn, probe_nodes)))
    });

    group.bench_function("l2_hit", |b| {
        // L1 disabled: every repeat lookup takes the shared path (read
        // lock + index probe + atomic Arc refcount round trip).
        let cache =
            CachedOsn::with_config(GraphOsn::new(g), CacheConfig::builder().l1_slots(0).build());
        let session = cache.session();
        probe_loop(&session, probe_nodes); // warm the L2
        b.iter(|| black_box(probe_loop(&session, probe_nodes)))
    });

    group.bench_function("l1_hit", |b| {
        // Default session: repeats resolve in the private direct-mapped
        // L1 with plain (non-atomic) refcounting.
        let cache = CachedOsn::new(GraphOsn::new(g));
        let session = cache.session();
        probe_loop(&session, probe_nodes); // warm both layers
        b.iter(|| black_box(probe_loop(&session, probe_nodes)))
    });

    group.finish();

    let mut group = c.benchmark_group("cache/miss_path");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("cold_miss_fill", |b| {
        // One pass over the probe set against a cold cache: backend fetch
        // + L2 insert + L1 fill per node. Cache construction is setup,
        // not measurement.
        b.iter_batched(
            || CachedOsn::new(GraphOsn::new(g)),
            |cache| {
                let session = cache.session();
                let mut acc = 0usize;
                for u in 0..probe_nodes {
                    acc += session.neighbors(NodeId(u)).len();
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_start_sampling(c: &mut Criterion) {
    let d = fixtures::facebook_like();
    let g = &d.graph;
    const DRAWS: usize = 10_000;

    let mut group = c.benchmark_group("cache/start_sampling");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("alias_stationary_start", |b| {
        // O(1): one uniform integer + one uniform float + one probe.
        let dense = DenseGraph::new(g);
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                let mut acc = 0u64;
                for _ in 0..DRAWS {
                    acc += dense.stationary_start(&mut rng).0 as u64;
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("cdf_binary_search_start", |b| {
        // The O(log n) path the alias table replaces: cumulative degrees
        // + partition_point per draw (table build is setup).
        let cumulative: Vec<u64> = g
            .nodes()
            .scan(0u64, |acc, u| {
                *acc += g.degree(u) as u64;
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().unwrap();
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                let mut acc = 0u64;
                for _ in 0..DRAWS {
                    let t = rng.gen_range(0..total);
                    acc += cumulative.partition_point(|&c| c <= t) as u64;
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("alias_table_build", |b| {
        // The one-time O(|V|) preprocessing the draws amortize.
        b.iter(|| black_box(AliasTable::from_degrees(g).unwrap().len()))
    });

    group.finish();
}

criterion_group!(benches, bench_hit_path, bench_start_sampling);
criterion_main!(benches);
