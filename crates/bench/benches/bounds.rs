//! Regenerates the Theorem 4.1–4.5 sample-size bounds (paper Tables
//! 18–22): full-graph scans computing `F`, `T(u)` and the five closed
//! forms per dataset.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::bounds::{all_bounds, ApproxParams};
use labelcount_graph::GroundTruth;
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds_tables18to22");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for d in fixtures::all() {
        group.bench_with_input(BenchmarkId::from_parameter(d.name), d, |b, d| {
            b.iter(|| {
                let mut acc = 0.0;
                for (i, _) in d.targets.iter().enumerate() {
                    let gt = GroundTruth::compute(&d.graph, d.targets[i].label);
                    for v in all_bounds(&d.graph, &gt, ApproxParams::paper()) {
                        if v.is_finite() {
                            acc += v;
                        }
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // Ground truth alone (the scan the bounds sit on).
    let mut group = c.benchmark_group("bounds/ground_truth_scan");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for d in [fixtures::facebook_like(), fixtures::livejournal_like()] {
        group.bench_with_input(BenchmarkId::from_parameter(d.name), d, |b, d| {
            b.iter(|| black_box(GroundTruth::compute(&d.graph, d.targets[0].label).f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
