//! Regenerates the NRMSE tables (paper Tables 4–17) at benchmark scale:
//! one target per table family, a reduced sweep per iteration. Timing
//! these end-to-end sweeps is what predicts full-harness runtimes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labelcount_bench::fixtures;
use labelcount_core::algorithms;
use labelcount_experiments::datasets::Dataset;
use labelcount_experiments::runner::{nrmse_sweep, SweepConfig};
use std::hint::black_box;

fn sweep_once(d: &Dataset, target_idx: usize, seed: u64) -> f64 {
    let t = &d.targets[target_idx.min(d.targets.len() - 1)];
    let cfg = SweepConfig {
        reps: 5,
        threads: 4,
        seed,
        ..SweepConfig::default()
    };
    let sizes = [d.graph.num_nodes() / 40, d.graph.num_nodes() / 20];
    let algs = algorithms::all_paper(cfg.alpha, cfg.delta);
    let rows = nrmse_sweep(&d.graph, d.burn_in, t.label, t.f, &sizes, &algs, &cfg);
    rows.iter().map(|r| r.nrmse.iter().sum::<f64>()).sum()
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_nrmse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    // One representative per table family.
    let cases: [(&str, &Dataset, usize); 5] = [
        ("table4_facebook", fixtures::facebook_like(), 0),
        ("table5_googleplus", fixtures::googleplus_like(), 0),
        ("table6to9_pokec", fixtures::pokec_like(), 0),
        ("table10to13_orkut", fixtures::orkut_like(), 0),
        ("table14to17_livejournal", fixtures::livejournal_like(), 0),
    ];
    for (name, d, idx) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &idx, |b, &idx| {
            b.iter(|| black_box(sweep_once(d, idx, 17)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
