//! # labelcount
//!
//! A from-scratch Rust reproduction of **"Counting Edges with Target Labels
//! in Online Social Networks via Random Walk"** (Wu, Long, Fu & Chen,
//! EDBT 2018).
//!
//! Given an OSN reachable only through per-user APIs (friend lists and
//! profile labels) and a target edge label `(t1, t2)`, the library
//! estimates `F` — the number of edges whose endpoints carry `t1` and `t2`
//! — from a single random walk, with two sampler families
//! (NeighborSample and NeighborExploration) and five baseline adaptations.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `labelcount-graph` | CSR labeled graphs, generators, ground truth |
//! | [`osn`] | `labelcount-osn` | restricted-API simulation, line graph `G'` |
//! | [`walk`] | `labelcount-walk` | simple/MH/MD/RCMH/GMD/non-backtracking walks, mixing time |
//! | [`core`] | `labelcount-core` | the paper's estimators, baselines, bounds |
//! | [`stats`] | `labelcount-stats` | NRMSE, parallel replication |
//! | [`serve`] | `labelcount-serve` | sharded multi-graph serving, quotas, admission control |
//!
//! # Quickstart
//!
//! ```
//! use labelcount::graph::gen::barabasi_albert;
//! use labelcount::graph::labels::{assign_binary_labels, with_labels};
//! use labelcount::graph::{GroundTruth, LabelId, TargetLabel};
//! use labelcount::osn::SimulatedOsn;
//! use labelcount::core::{Algorithm, NsHansenHurwitz, RunConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A synthetic OSN with binary "gender" labels.
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = barabasi_albert(2_000, 8, &mut rng);
//! let mut labels = vec![Vec::new(); g.num_nodes()];
//! assign_binary_labels(&mut labels, 0.45, &mut rng);
//! let g = with_labels(&g, &labels);
//!
//! // Estimate the number of female–male friendships via random walk,
//! // spending 5% of |V| in API calls.
//! let target = TargetLabel::new(LabelId(1), LabelId(2));
//! let osn = SimulatedOsn::new(&g);
//! let cfg = RunConfig { burn_in: 200, ..RunConfig::default() };
//! let estimate = NsHansenHurwitz
//!     .estimate(&osn, target, g.num_nodes() / 20, &cfg, &mut rng)
//!     .unwrap();
//!
//! let truth = GroundTruth::compute(&g, target).f as f64;
//! assert!((estimate - truth).abs() / truth < 0.5);
//! ```

pub use labelcount_core as core;
pub use labelcount_graph as graph;
pub use labelcount_osn as osn;
pub use labelcount_serve as serve;
pub use labelcount_stats as stats;
pub use labelcount_walk as walk;
