//! The paper's central empirical finding (§5.2 finding 4, §5.3, Figures
//! 1–2): which sampler family wins is decided by the relative count of
//! target edges.
//!
//! * rare target edges → NeighborExploration wins (it boosts the target
//!   sampling probability from `F/|E|` to `Σ_{u∈Q} d(u)/2|E|`);
//! * abundant target edges → NeighborSample wins (exploration wastes API
//!   budget re-checking neighborhoods that are full of target edges
//!   anyway).

use labelcount::core::{Algorithm, NeHansenHurwitz, NsHansenHurwitz, RunConfig};
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::{assign_binary_labels, with_labels};
use labelcount::graph::{GroundTruth, LabelId, LabeledGraph, TargetLabel};
use labelcount::osn::SimulatedOsn;
use labelcount::stats::{nrmse, replicate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn target() -> TargetLabel {
    TargetLabel::new(LabelId(1), LabelId(2))
}

/// BA graph where a small clique-adjacent subset carries label 1 and the
/// rest label 9 except a thin label-2 minority — target edges are rare.
fn rare_target_graph(seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(6_000, 8, &mut rng);
    let mut labels = vec![vec![LabelId(9)]; g.num_nodes()];
    // ~2.5% of nodes carry label 1, ~2.5% label 2; cross edges are ~0.15%
    // of E — rare enough that NeighborSample's uniform edge draws almost
    // never hit a target within the budget, the regime of §5.3.
    for (i, slot) in labels.iter_mut().enumerate() {
        if i % 40 == 3 {
            *slot = vec![LabelId(1)];
        } else if i % 40 == 11 {
            *slot = vec![LabelId(2)];
        }
    }
    with_labels(&g, &labels)
}

/// Binary-labeled graph where ~half of the edges are target edges.
fn abundant_target_graph(seed: u64) -> LabeledGraph {
    // Matches the facebook-like regime (Table 4): mean degree ~44 and a
    // ~30/70 label split so 42% of the edges are cross-label. The
    // asymmetry matters: it makes the per-node cross fraction T(u)/d(u)
    // bimodal (~0.7 at minority nodes, ~0.3 at majority nodes), which is
    // what inflates NeighborExploration's variance in this regime.
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(4_000, 22, &mut rng);
    let mut labels = vec![Vec::new(); g.num_nodes()];
    assign_binary_labels(
        &mut labels,
        labelcount::graph::labels::binary_share_for_cross_fraction(0.424),
        &mut rng,
    );
    with_labels(&g, &labels)
}

fn nrmse_of(alg: &dyn Algorithm, g: &LabeledGraph, budget: usize, seed: u64) -> f64 {
    let truth = GroundTruth::compute(g, target());
    assert!(truth.f > 0, "fixture must have target edges");
    let cfg = RunConfig {
        burn_in: 300,
        ..RunConfig::default()
    };
    let estimates = replicate(400, 8, seed, |_i, s| {
        let osn = SimulatedOsn::new(g);
        let mut rng = StdRng::seed_from_u64(s);
        alg.estimate(&osn, target(), budget, &cfg, &mut rng)
            .unwrap()
    });
    nrmse(&estimates, truth.f as f64)
}

#[test]
fn exploration_wins_when_target_edges_are_rare() {
    let g = rare_target_graph(21);
    let budget = g.num_nodes() / 10;
    let ns = nrmse_of(&NsHansenHurwitz, &g, budget, 22);
    let ne = nrmse_of(&NeHansenHurwitz, &g, budget, 23);
    // The converged NE/NS NRMSE ratio on this fixture is ~0.68 (measured
    // at 2000 replications); 0.8 asserts a clear win while leaving
    // headroom for replication noise at 400 replications.
    assert!(
        ne < 0.8 * ns,
        "rare targets: NE ({ne}) should clearly beat NS ({ns})"
    );
}

#[test]
fn plain_sampling_wins_when_target_edges_are_abundant() {
    let g = abundant_target_graph(24);
    let budget = g.num_nodes() / 20;
    let ns = nrmse_of(&NsHansenHurwitz, &g, budget, 25);
    let ne = nrmse_of(&NeHansenHurwitz, &g, budget, 26);
    assert!(ns < ne, "abundant targets: NS ({ns}) should beat NE ({ne})");
}

#[test]
fn exploration_samples_fewer_nodes_on_abundant_labels() {
    // The mechanism behind the crossover: on abundant labels every sample
    // triggers a full neighborhood exploration, so NE affords far fewer
    // samples per API budget than NS.
    use labelcount::core::neighbor_exploration::run_neighbor_exploration;
    use labelcount::core::neighbor_sample::run_neighbor_sample;

    let abundant = abundant_target_graph(27);
    let rare = rare_target_graph(28);
    let budget = 2_000;
    let mut rng = StdRng::seed_from_u64(29);

    let osn = SimulatedOsn::new(&abundant);
    let ne_abundant = run_neighbor_exploration(&osn, target(), budget, 100, &mut rng)
        .unwrap()
        .len();
    let osn = SimulatedOsn::new(&abundant);
    let ns_abundant = run_neighbor_sample(&osn, target(), budget, 100, &mut rng)
        .unwrap()
        .len();
    let osn = SimulatedOsn::new(&rare);
    let ne_rare = run_neighbor_exploration(&osn, target(), budget, 100, &mut rng)
        .unwrap()
        .len();

    assert!(
        ne_abundant * 3 < ns_abundant,
        "NE ({ne_abundant}) must collect far fewer samples than NS ({ns_abundant})"
    );
    assert!(
        ne_rare > 2 * ne_abundant,
        "NE on rare labels ({ne_rare}) must collect more samples than on abundant ({ne_abundant})"
    );
}
