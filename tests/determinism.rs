//! Reproducibility across the whole pipeline: identical seeds must yield
//! identical datasets, sweeps, and estimates, regardless of thread count.

use labelcount::core::algorithms;
use labelcount::graph::GroundTruth;
use labelcount_experiments::datasets::{build, DatasetKind};
use labelcount_experiments::runner::{nrmse_sweep, SweepConfig};

#[test]
fn dataset_builds_are_deterministic() {
    let a = build(DatasetKind::FacebookLike, 0.05, 77);
    let b = build(DatasetKind::FacebookLike, 0.05, 77);
    assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    assert_eq!(a.burn_in, b.burn_in);
    assert_eq!(a.targets.len(), b.targets.len());
    for (x, y) in a.targets.iter().zip(&b.targets) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.f, y.f);
    }
    for u in a.graph.nodes() {
        assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
        assert_eq!(a.graph.labels(u), b.graph.labels(u));
    }
}

#[test]
fn different_data_seeds_give_different_graphs() {
    let a = build(DatasetKind::FacebookLike, 0.05, 1);
    let b = build(DatasetKind::FacebookLike, 0.05, 2);
    let differs = a
        .graph
        .nodes()
        .any(|u| a.graph.neighbors(u) != b.graph.neighbors(u));
    assert!(differs, "different seeds must change the graph");
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let d = build(DatasetKind::FacebookLike, 0.05, 3);
    let t = &d.targets[0];
    let gt = GroundTruth::compute(&d.graph, t.label);
    let algs = algorithms::proposed();
    let run = |threads: usize| {
        let cfg = SweepConfig {
            reps: 16,
            threads,
            seed: 9,
            ..SweepConfig::default()
        };
        nrmse_sweep(&d.graph, d.burn_in, t.label, gt.f, &[40, 120], &algs, &cfg)
    };
    let serial = run(1);
    let parallel = run(8);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.abbrev, p.abbrev);
        assert_eq!(
            s.nrmse, p.nrmse,
            "{} differs across thread counts",
            s.abbrev
        );
    }
}

#[test]
fn sweep_seed_changes_results() {
    let d = build(DatasetKind::FacebookLike, 0.05, 3);
    let t = &d.targets[0];
    let gt = GroundTruth::compute(&d.graph, t.label);
    let algs = algorithms::proposed();
    let run = |seed: u64| {
        let cfg = SweepConfig {
            reps: 8,
            threads: 4,
            seed,
            ..SweepConfig::default()
        };
        nrmse_sweep(&d.graph, d.burn_in, t.label, gt.f, &[60], &algs, &cfg)
    };
    let a = run(1);
    let b = run(2);
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.nrmse != y.nrmse),
        "different sweep seeds must change at least one cell"
    );
}
