//! Reproducibility across the whole pipeline: identical seeds must yield
//! identical datasets, sweeps, and estimates, regardless of thread count.

use labelcount::core::{
    algorithms, Algorithm, Engine, NeHansenHurwitz, NsHansenHurwitz, RunConfig,
};
use labelcount::graph::GroundTruth;
use labelcount::osn::SimulatedOsn;
use labelcount::stats::replication_seed;
use labelcount_experiments::datasets::{build, DatasetKind};
use labelcount_experiments::runner::{nrmse_sweep, SweepConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Identical `StdRng` seeds must produce bit-identical estimates across
/// two independent runs, for both sampler families. (`assert_eq!` on `f64`
/// is deliberate: determinism means the same bits, not "close".)
#[test]
fn ns_and_ne_estimates_are_bit_identical_given_seed() {
    let d = build(DatasetKind::FacebookLike, 0.05, 41);
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: 60,
        ..RunConfig::default()
    };
    let budget = d.graph.num_nodes() / 10;
    for (alg, name) in [
        (&NsHansenHurwitz as &dyn Algorithm, "NS"),
        (&NeHansenHurwitz, "NE"),
    ] {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let run = || {
                let osn = SimulatedOsn::new(&d.graph);
                let mut rng = StdRng::seed_from_u64(seed);
                alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap()
            };
            let a = run();
            let b = run();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name} sampler not seed-stable at seed {seed}: {a} vs {b}"
            );
        }
    }
}

/// Different seeds must not collapse to one estimate (guards against an
/// RNG that ignores its seed, which would make the test above vacuous).
#[test]
fn ns_and_ne_estimates_vary_across_seeds() {
    let d = build(DatasetKind::FacebookLike, 0.05, 41);
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: 60,
        ..RunConfig::default()
    };
    let budget = d.graph.num_nodes() / 10;
    for alg in [&NsHansenHurwitz as &dyn Algorithm, &NeHansenHurwitz] {
        let estimates: Vec<f64> = (0..4)
            .map(|seed| {
                let osn = SimulatedOsn::new(&d.graph);
                let mut rng = StdRng::seed_from_u64(seed);
                alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap()
            })
            .collect();
        assert!(
            estimates.windows(2).any(|w| w[0] != w[1]),
            "{}: all seeds produced {estimates:?}",
            alg.abbrev()
        );
    }
}

#[test]
fn dataset_builds_are_deterministic() {
    let a = build(DatasetKind::FacebookLike, 0.05, 77);
    let b = build(DatasetKind::FacebookLike, 0.05, 77);
    assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    assert_eq!(a.burn_in, b.burn_in);
    assert_eq!(a.targets.len(), b.targets.len());
    for (x, y) in a.targets.iter().zip(&b.targets) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.f, y.f);
    }
    for u in a.graph.nodes() {
        assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
        assert_eq!(a.graph.labels(u), b.graph.labels(u));
    }
}

#[test]
fn different_data_seeds_give_different_graphs() {
    let a = build(DatasetKind::FacebookLike, 0.05, 1);
    let b = build(DatasetKind::FacebookLike, 0.05, 2);
    let differs = a
        .graph
        .nodes()
        .any(|u| a.graph.neighbors(u) != b.graph.neighbors(u));
    assert!(differs, "different seeds must change the graph");
}

/// `Engine::estimate_replicated` must be bit-identical to the serial
/// replicate loop for every Table-2 algorithm, at every thread count. The
/// shared cache and the thread pool may change timings — never results.
#[test]
fn engine_replication_is_bit_identical_across_thread_counts() {
    let d = build(DatasetKind::FacebookLike, 0.05, 41);
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: 40,
        ..RunConfig::default()
    };
    let budget = d.graph.num_nodes() / 10;
    let reps = 6;
    let base_seed = 0xE17;

    for alg in algorithms::all_paper(0.2, 0.5) {
        let engine = Engine::new(&d.graph);
        // The reference: an explicit serial loop with the replication
        // seed schedule, one session per replicate.
        let serial: Vec<u64> = (0..reps)
            .map(|i| {
                engine
                    .estimate(
                        alg.as_ref(),
                        target,
                        budget,
                        &cfg,
                        replication_seed(base_seed, i as u64),
                    )
                    .unwrap()
                    .to_bits()
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let replicated: Vec<u64> = engine
                .estimate_replicated(alg.as_ref(), target, budget, &cfg, base_seed, reps, threads)
                .into_iter()
                .map(|r| r.unwrap().to_bits())
                .collect();
            assert_eq!(
                serial,
                replicated,
                "{} diverged from the serial loop at {threads} threads",
                alg.abbrev()
            );
        }
        // Replication shares the cache, so the backend paid each distinct
        // fetch once, not once per replicate.
        let stats = engine.stats();
        assert!(stats.misses() <= stats.logical_calls());
        assert!(
            stats.neighbor_misses <= d.graph.num_nodes() as u64,
            "{}: unbounded cache must cap misses at distinct nodes",
            alg.abbrev()
        );
    }
}

/// The session L1 cache changes what a hit costs, never what a query
/// sees: for every Table-2 algorithm, replicated estimation must be
/// bit-identical at 1, 2, and 8 threads with the L1 enabled (default)
/// and disabled — and the shared logical/miss accounting must agree
/// across all six cells.
#[test]
fn engine_replication_is_bit_identical_with_l1_on_and_off() {
    use labelcount::osn::CacheConfig;

    let d = build(DatasetKind::FacebookLike, 0.05, 41);
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: 40,
        ..RunConfig::default()
    };
    let budget = d.graph.num_nodes() / 10;
    let reps = 6;
    let base_seed = 0x11CA;

    for alg in algorithms::all_paper(0.2, 0.5) {
        let mut reference: Option<(Vec<u64>, u64, u64)> = None;
        for l1_slots in [0usize, 512] {
            let engine = Engine::with_cache_config(
                &d.graph,
                CacheConfig::builder().l1_slots(l1_slots).build(),
            );
            for threads in [1usize, 2, 8] {
                let estimates: Vec<u64> = engine
                    .estimate_replicated(
                        alg.as_ref(),
                        target,
                        budget,
                        &cfg,
                        base_seed,
                        reps,
                        threads,
                    )
                    .into_iter()
                    .map(|r| r.unwrap().to_bits())
                    .collect();
                match &reference {
                    None => {
                        let stats = engine.stats();
                        reference = Some((estimates, stats.logical_calls(), stats.misses()));
                    }
                    Some((est_ref, _, _)) => assert_eq!(
                        est_ref,
                        &estimates,
                        "{} diverged at l1_slots={l1_slots}, {threads} threads",
                        alg.abbrev()
                    ),
                }
            }
            // Logical and miss totals are independent of the L1 and the
            // thread count (each (l1, threads) cell replayed the same
            // per-session sequences; the engine accumulated 3 passes).
            let stats = engine.stats();
            let (_, logical_one_pass, misses_one_pass) = reference.as_ref().unwrap();
            assert_eq!(
                stats.logical_calls(),
                3 * logical_one_pass,
                "{} l1_slots={l1_slots}: logical calls drifted",
                alg.abbrev()
            );
            assert_eq!(
                stats.misses(),
                *misses_one_pass,
                "{} l1_slots={l1_slots}: unbounded misses must stay at the distinct floor",
                alg.abbrev()
            );
            if l1_slots == 0 {
                assert_eq!(stats.l1_hits(), 0, "{}", alg.abbrev());
            }
        }
    }
}

/// The multi-query workload service over a hostile (fault-injecting) API:
/// a mixed workload of ≥ 8 Table-2 queries at a nonzero fault rate must
/// produce bit-identical estimates, retry counts, latency ticks, and
/// budget verdicts at 1, 2, and 8 workers — the same determinism bar as
/// replicated estimation, now with faults in the loop.
#[test]
fn workload_over_adversarial_osn_is_bit_identical_across_worker_counts() {
    use labelcount::core::Workload;
    use labelcount::osn::{FaultConfig, RetryPolicy};

    let d = build(DatasetKind::FacebookLike, 0.05, 41);
    let target = d.targets[0].label;
    let cfg = RunConfig {
        burn_in: 40,
        ..RunConfig::default()
    };
    let workload = Workload::mixed(10, target, d.graph.num_nodes() / 20, 0xADA9, cfg)
        .builder()
        .faults(FaultConfig::hostile(0xFA17, 0.3), RetryPolicy::default())
        .build();
    let engine = Engine::new(&d.graph);

    let reference = engine.run_workload(&workload, 1);
    assert!(
        reference.total_retry_charges() > 0,
        "a 0.3 fault rate must charge retries, or this test is vacuous"
    );
    for workers in [2usize, 8] {
        let run = engine.run_workload(&workload, workers);
        assert_eq!(run.outcomes.len(), reference.outcomes.len());
        for (a, b) in reference.outcomes.iter().zip(&run.outcomes) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.abbrev, b.abbrev);
            assert_eq!(
                a.estimate.as_ref().map(|e| e.to_bits()),
                b.estimate.as_ref().map(|e| e.to_bits()),
                "query {} ({}) estimate diverged at {workers} workers",
                a.id,
                a.abbrev
            );
            assert_eq!(a.retry_charges, b.retry_charges, "query {}", a.id);
            assert_eq!(a.backend_attempts, b.backend_attempts, "query {}", a.id);
            assert_eq!(a.latency_ticks, b.latency_ticks, "query {}", a.id);
            assert_eq!(a.rate_limited, b.rate_limited, "query {}", a.id);
            assert_eq!(a.budget_exhausted, b.budget_exhausted, "query {}", a.id);
        }
        assert_eq!(
            reference.summary.mean().to_bits(),
            run.summary.mean().to_bits(),
            "summary statistics diverged at {workers} workers"
        );
    }
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let d = build(DatasetKind::FacebookLike, 0.05, 3);
    let t = &d.targets[0];
    let gt = GroundTruth::compute(&d.graph, t.label);
    let algs = algorithms::proposed();
    let run = |threads: usize| {
        let cfg = SweepConfig {
            reps: 16,
            threads,
            seed: 9,
            ..SweepConfig::default()
        };
        nrmse_sweep(&d.graph, d.burn_in, t.label, gt.f, &[40, 120], &algs, &cfg)
    };
    let serial = run(1);
    let parallel = run(8);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.abbrev, p.abbrev);
        assert_eq!(
            s.nrmse, p.nrmse,
            "{} differs across thread counts",
            s.abbrev
        );
    }
}

#[test]
fn sweep_seed_changes_results() {
    let d = build(DatasetKind::FacebookLike, 0.05, 3);
    let t = &d.targets[0];
    let gt = GroundTruth::compute(&d.graph, t.label);
    let algs = algorithms::proposed();
    let run = |seed: u64| {
        let cfg = SweepConfig {
            reps: 8,
            threads: 4,
            seed,
            ..SweepConfig::default()
        };
        nrmse_sweep(&d.graph, d.burn_in, t.label, gt.f, &[60], &algs, &cfg)
    };
    let a = run(1);
    let b = run(2);
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.nrmse != y.nrmse),
        "different sweep seeds must change at least one cell"
    );
}
