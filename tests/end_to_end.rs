//! End-to-end integration: generation → preprocessing → mixing → restricted
//! API → estimation → error measurement, spanning every crate.

use labelcount::core::{algorithms, Algorithm, NsHansenHurwitz, RunConfig};
use labelcount::graph::components::largest_component;
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::{assign_binary_labels, with_labels};
use labelcount::graph::{GroundTruth, LabelId, LabeledGraph, TargetLabel};
use labelcount::osn::SimulatedOsn;
use labelcount::stats::{nrmse, replicate};
use labelcount::walk::mixing::{mixing_time, Starts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_osn_graph(seed: u64, n: usize, p1: f64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(n, 6, &mut rng);
    let mut labels = vec![Vec::new(); g.num_nodes()];
    assign_binary_labels(&mut labels, p1, &mut rng);
    let g = with_labels(&g, &labels);
    largest_component(&g).unwrap().graph
}

fn target() -> TargetLabel {
    TargetLabel::new(LabelId(1), LabelId(2))
}

#[test]
fn full_pipeline_estimates_within_tolerance() {
    let g = build_osn_graph(1, 3_000, 0.4);
    let truth = GroundTruth::compute(&g, target());
    assert!(truth.f > 0);

    // Measured mixing time drives the burn-in, as in the harness.
    let mut rng = StdRng::seed_from_u64(2);
    let mt = mixing_time(&g, 1e-3, 2_000, Starts::Sampled(3), &mut rng)
        .t
        .expect("BA graph must mix");
    let cfg = RunConfig {
        burn_in: 2 * mt,
        ..RunConfig::default()
    };

    let estimates = replicate(60, 8, 3, |_i, seed| {
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        NsHansenHurwitz
            .estimate(&osn, target(), g.num_nodes() / 10, &cfg, &mut rng)
            .unwrap()
    });
    let err = nrmse(&estimates, truth.f as f64);
    assert!(err < 0.35, "NRMSE {err}");
}

#[test]
fn all_ten_algorithms_produce_finite_nonnegative_estimates() {
    let g = build_osn_graph(4, 1_500, 0.35);
    let cfg = RunConfig {
        burn_in: 200,
        ..RunConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    for alg in algorithms::all_paper(0.2, 0.5) {
        let osn = SimulatedOsn::new(&g);
        let est = alg
            .estimate(&osn, target(), 200, &cfg, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", alg.abbrev()));
        assert!(
            est.is_finite() && est >= 0.0,
            "{}: estimate {est}",
            alg.abbrev()
        );
        assert!(
            est <= 2.0 * g.num_edges() as f64,
            "{}: estimate {est} beyond any plausible count",
            alg.abbrev()
        );
    }
}

#[test]
fn error_shrinks_with_budget_for_proposed_algorithms() {
    let g = build_osn_graph(6, 3_000, 0.4);
    let truth = GroundTruth::compute(&g, target());
    let cfg = RunConfig {
        burn_in: 200,
        ..RunConfig::default()
    };
    for alg in algorithms::proposed() {
        let err_at = |budget: usize, seed: u64| {
            let estimates = replicate(80, 8, seed, |_i, s| {
                let osn = SimulatedOsn::new(&g);
                let mut rng = StdRng::seed_from_u64(s);
                alg.estimate(&osn, target(), budget, &cfg, &mut rng)
                    .unwrap()
            });
            nrmse(&estimates, truth.f as f64)
        };
        let small = err_at(60, 7);
        let large = err_at(1_500, 8);
        assert!(
            large < small,
            "{}: NRMSE {small} -> {large} should shrink",
            alg.abbrev()
        );
    }
}

#[test]
fn estimators_see_only_the_api() {
    // The OSN's call counters fully explain the estimator's graph access:
    // no calls before, some calls after, reset works.
    let g = build_osn_graph(9, 800, 0.5);
    let osn = SimulatedOsn::new(&g);
    assert_eq!(osn.stats().total_calls(), 0);
    let cfg = RunConfig {
        burn_in: 50,
        ..RunConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(10);
    NsHansenHurwitz
        .estimate(&osn, target(), 100, &cfg, &mut rng)
        .unwrap();
    let s = osn.stats();
    assert!(s.neighbor_calls > 0);
    assert!(s.label_calls > 0);
    assert!(s.distinct_neighbor_calls <= s.neighbor_calls);
    osn.reset_stats();
    assert_eq!(osn.stats().total_calls(), 0);
}

#[test]
fn ground_truth_is_invariant_under_component_extraction_of_connected_graph() {
    let g = build_osn_graph(11, 1_000, 0.4);
    let f1 = GroundTruth::compute(&g, target()).f;
    let ex = largest_component(&g).unwrap();
    let f2 = GroundTruth::compute(&ex.graph, target()).f;
    assert_eq!(f1, f2);
}
