//! Smoke coverage for the runnable examples: every example must build, and
//! `quickstart` must run end-to-end with its fixed seed and print the
//! expected report shape.
//!
//! These tests shell out to the same `cargo` that is running the test
//! suite (the build lock serializes with any concurrent invocation, so
//! nesting is safe) and share the workspace target directory, so the
//! example binaries are typically already fresh.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // CARGO_MANIFEST_DIR = crates/labelcount; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("facade manifest sits two levels below the workspace root")
}

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(workspace_root());
    cmd
}

#[test]
fn all_examples_build() {
    let output = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_runs_end_to_end() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );

    // The example seeds its RNG with 42, so the graph shape is fixed and
    // the report must name every algorithm of the paper's Table 2.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("graph: |V|=10000"),
        "unexpected header:\n{stdout}"
    );
    assert!(
        stdout.contains("true F = "),
        "missing ground truth:\n{stdout}"
    );
    for abbrev in [
        "NeighborSample-HH",
        "NeighborSample-HT",
        "NeighborExploration-HH",
        "NeighborExploration-HT",
        "NeighborExploration-RW",
        "EX-MDRW",
        "EX-MHRW",
        "EX-RW",
        "EX-RCMH",
        "EX-GMD",
    ] {
        assert!(stdout.contains(abbrev), "missing {abbrev} row:\n{stdout}");
    }
}
