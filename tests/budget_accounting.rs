//! The API-call budget contract, end to end: every algorithm must spend
//! close to (and never wildly beyond) its budget, burn-in must be
//! budget-free, and hard OSN budgets must interrupt cleanly.

use labelcount::core::{algorithms, Algorithm, EstimateError, NsHansenHurwitz, RunConfig};
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::{assign_binary_labels, with_labels};
use labelcount::graph::{LabelId, LabeledGraph, TargetLabel};
use labelcount::osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(2_000, 6, &mut rng);
    let mut labels = vec![Vec::new(); g.num_nodes()];
    assign_binary_labels(&mut labels, 0.4, &mut rng);
    with_labels(&g, &labels)
}

fn target() -> TargetLabel {
    TargetLabel::new(LabelId(1), LabelId(2))
}

#[test]
fn every_algorithm_spends_close_to_its_budget() {
    let g = fixture(1);
    let burn_in = 100usize;
    let cfg = RunConfig {
        burn_in,
        ..RunConfig::default()
    };
    let budget = 600usize;
    let mut rng = StdRng::seed_from_u64(2);
    for alg in algorithms::all_paper(0.2, 0.5) {
        let osn = SimulatedOsn::new(&g);
        alg.estimate(&osn, target(), budget, &cfg, &mut rng)
            .unwrap();
        let spent = osn.api_calls() as usize;
        // Total = burn-in cost + sampled-phase (>= budget, < budget + one
        // observation). Burn-in itself costs at most a few calls per step.
        assert!(
            spent >= budget,
            "{} spent only {spent} of {budget}",
            alg.abbrev()
        );
        let max_overshoot = 4 * g.nodes().map(|u| g.degree(u)).max().unwrap() + 8 * burn_in;
        assert!(
            spent <= budget + max_overshoot,
            "{} spent {spent}, way past {budget}",
            alg.abbrev()
        );
    }
}

#[test]
fn burn_in_is_not_charged_to_the_budget() {
    // Same budget with wildly different burn-ins must produce comparable
    // sampled-phase work: sample counts should not shrink with burn-in.
    let g = fixture(3);
    let budget = 500usize;
    let mut counts = Vec::new();
    for burn_in in [10usize, 2_000] {
        let osn = SimulatedOsn::new(&g);
        let cfg = RunConfig {
            burn_in,
            ..RunConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        NsHansenHurwitz
            .estimate(&osn, target(), budget, &cfg, &mut rng)
            .unwrap();
        // Sampled-phase calls = total − burn-in walk calls (1/step).
        counts.push(osn.api_calls() as i64 - burn_in as i64);
    }
    let diff = (counts[0] - counts[1]).abs();
    assert!(
        diff <= 8,
        "sampled-phase spend must be burn-in independent: {counts:?}"
    );
}

#[test]
fn hard_osn_budget_interrupts_every_algorithm() {
    let g = fixture(5);
    let cfg = RunConfig {
        burn_in: 5,
        ..RunConfig::default()
    };
    for alg in algorithms::all_paper(0.2, 0.5) {
        let osn = SimulatedOsn::new(&g);
        osn.set_budget(120);
        let mut rng = StdRng::seed_from_u64(6);
        // Ask for far more than the hard budget allows.
        match alg.estimate(&osn, target(), 1_000_000, &cfg, &mut rng) {
            Err(EstimateError::BudgetExhausted { .. }) => {}
            other => panic!("{}: expected exhaustion, got {other:?}", alg.abbrev()),
        }
    }
}

#[test]
fn distinct_calls_never_exceed_raw_calls() {
    let g = fixture(7);
    let cfg = RunConfig {
        burn_in: 50,
        ..RunConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(8);
    for alg in algorithms::all_paper(0.2, 0.5) {
        let osn = SimulatedOsn::new(&g);
        alg.estimate(&osn, target(), 400, &cfg, &mut rng).unwrap();
        let s = osn.stats();
        assert!(s.distinct_neighbor_calls <= s.neighbor_calls);
        assert!(s.distinct_label_calls <= s.label_calls);
        assert!(s.distinct_neighbor_calls as usize <= g.num_nodes());
        assert!(s.distinct_label_calls as usize <= g.num_nodes());
    }
}
