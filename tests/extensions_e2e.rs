//! End-to-end tests for the extensions: labeled motif counting (paper §6
//! future work) and graph-size estimation (paper's prior-knowledge
//! assumption), including their interaction with the restricted API.

use labelcount::core::motifs::{estimate_labeled_triangles, estimate_labeled_wedges};
use labelcount::core::size::estimate_graph_size;
use labelcount::graph::gen::{barabasi_albert, watts_strogatz};
use labelcount::graph::labels::with_labels;
use labelcount::graph::motifs::{count_labeled_triangles, count_labeled_wedges, TargetTriple};
use labelcount::graph::{LabelId, LabeledGraph};
use labelcount::osn::SimulatedOsn;
use labelcount::stats::replicate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn three_label_ba(seed: u64, n: usize, m: usize) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(n, m, &mut rng);
    let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
        .map(|i| vec![LabelId(1 + (i % 3) as u32)])
        .collect();
    with_labels(&g, &labels)
}

fn triple() -> TargetTriple {
    TargetTriple::new(LabelId(1), LabelId(2), LabelId(3))
}

#[test]
fn wedge_estimates_converge_to_exact_count() {
    let g = three_label_ba(1, 1_500, 5);
    let truth = count_labeled_wedges(&g, triple()) as f64;
    assert!(truth > 0.0);
    let means: Vec<f64> = [800usize, 8_000]
        .iter()
        .map(|&budget| {
            let estimates = replicate(60, 8, budget as u64, |_i, seed| {
                let osn = SimulatedOsn::new(&g);
                let mut rng = StdRng::seed_from_u64(seed);
                estimate_labeled_wedges(&osn, triple(), budget, 100, &mut rng).unwrap()
            });
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            (mean - truth).abs() / truth
        })
        .collect();
    assert!(means[1] < 0.1, "large-budget relative error {}", means[1]);
}

#[test]
fn triangle_estimates_match_on_clustered_graph() {
    // WS graphs are triangle-rich; relabel and compare.
    let mut rng = StdRng::seed_from_u64(2);
    let g = watts_strogatz(900, 8, 0.1, &mut rng);
    let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
        .map(|i| vec![LabelId(1 + (i % 3) as u32)])
        .collect();
    let g = with_labels(&g, &labels);
    let truth = count_labeled_triangles(&g, triple()) as f64;
    assert!(truth > 0.0, "WS fixture must contain target triangles");

    let estimates = replicate(60, 8, 3, |_i, seed| {
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        estimate_labeled_triangles(&osn, triple(), 6_000, 200, &mut rng).unwrap()
    });
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let rel = (mean - truth).abs() / truth;
    assert!(rel < 0.15, "mean {mean} vs truth {truth}");
}

#[test]
fn size_estimates_feed_the_prior_knowledge() {
    // The paper's assumption 2 closed: estimate |V| and |E| from the walk,
    // then check they are close enough to drive the estimators.
    let g = three_label_ba(4, 2_500, 6);
    let estimates = replicate(30, 8, 5, |_i, seed| {
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        estimate_graph_size(&osn, 3_000, 100, &mut rng).unwrap()
    });
    let n_mean = estimates.iter().map(|e| e.num_nodes).sum::<f64>() / estimates.len() as f64;
    let e_mean = estimates.iter().map(|e| e.num_edges).sum::<f64>() / estimates.len() as f64;
    let n_rel = (n_mean - g.num_nodes() as f64).abs() / g.num_nodes() as f64;
    let e_rel = (e_mean - g.num_edges() as f64).abs() / g.num_edges() as f64;
    assert!(n_rel < 0.2, "relative |V| error {n_rel}");
    assert!(e_rel < 0.2, "relative |E| error {e_rel}");
    assert!(estimates.iter().all(|e| e.collisions > 0));
}

#[test]
fn motif_estimators_only_touch_the_api() {
    let g = three_label_ba(6, 800, 4);
    let osn = SimulatedOsn::new(&g);
    let mut rng = StdRng::seed_from_u64(7);
    assert_eq!(osn.stats().total_calls(), 0);
    estimate_labeled_wedges(&osn, triple(), 500, 50, &mut rng).unwrap();
    let after_wedges = osn.stats().total_calls();
    assert!(after_wedges > 0);
    estimate_labeled_triangles(&osn, triple(), 500, 50, &mut rng).unwrap();
    assert!(osn.stats().total_calls() > after_wedges);
}
