//! Explores the `(ε, δ)`-approximation sample-size bounds of Theorems
//! 4.1–4.5 (the paper's Tables 18–22): how each bound reacts to the
//! target-edge frequency and to the accuracy knobs — and how conservative
//! the Chebyshev analysis is compared to what the estimators actually
//! need.
//!
//! ```sh
//! cargo run --release --example bounds_explorer
//! ```

use labelcount::core::bounds::{all_bounds, ApproxParams};
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::{
    assign_binary_labels, binary_share_for_cross_fraction, with_labels,
};
use labelcount::graph::{GroundTruth, LabelId, TargetLabel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NAMES: [&str; 5] = ["NS-HH", "NS-HT", "NE-HH", "NE-HT", "NE-RW"];

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let base = barabasi_albert(20_000, 10, &mut rng);
    let target = TargetLabel::new(LabelId(1), LabelId(2));

    // Sweep the cross-edge frequency by re-labeling the same graph.
    println!("bounds at (eps, delta) = (0.1, 0.1) vs target-edge frequency:");
    println!(
        "{:>10} {:>10} {}",
        "F/|E|",
        "F",
        NAMES.map(|n| format!("{n:>12}")).join("")
    );
    for frac in [0.005, 0.02, 0.1, 0.3, 0.45] {
        let p1 = binary_share_for_cross_fraction(frac);
        let mut labels = vec![Vec::new(); base.num_nodes()];
        assign_binary_labels(&mut labels, p1, &mut rng);
        let g = with_labels(&base, &labels);
        let gt = GroundTruth::compute(&g, target);
        let bounds = all_bounds(&g, &gt, ApproxParams::paper());
        print!("{:>10.3} {:>10}", gt.relative_count(&g), gt.f);
        for b in bounds {
            print!("{:>12.2e}", b);
        }
        println!();
    }

    // Sweep the accuracy knobs on one labeled graph.
    let p1 = binary_share_for_cross_fraction(0.05);
    let mut labels = vec![Vec::new(); base.num_nodes()];
    assign_binary_labels(&mut labels, p1, &mut rng);
    let g = with_labels(&base, &labels);
    let gt = GroundTruth::compute(&g, target);
    println!(
        "\nbounds vs accuracy (fixed frequency {:.3}):",
        gt.relative_count(&g)
    );
    println!(
        "{:>6} {:>6} {}",
        "eps",
        "delta",
        NAMES.map(|n| format!("{n:>12}")).join("")
    );
    for (eps, delta) in [(0.3, 0.3), (0.2, 0.2), (0.1, 0.1), (0.05, 0.05)] {
        let bounds = all_bounds(&g, &gt, ApproxParams::new(eps, delta));
        print!("{:>6} {:>6}", eps, delta);
        for b in bounds {
            print!("{:>12.2e}", b);
        }
        println!();
    }
    println!(
        "\nTwo of the paper's observations are visible here: the NE-HH bound is the\n\
         smallest across frequencies (Tables 18-22), and all bounds shrink rapidly as\n\
         the target gets more frequent. The paper also notes (\u{00a7}5.2) that in practice\n\
         far fewer samples suffice - Chebyshev bounds are worst-case."
    );
}
