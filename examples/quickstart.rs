//! Quickstart: estimate the number of cross-label friendships in a
//! synthetic OSN with every algorithm of the paper, and compare against
//! the exact count.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use labelcount::core::{algorithms, RunConfig};
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::{assign_binary_labels, with_labels};
use labelcount::graph::{GroundTruth, LabelId, TargetLabel};
use labelcount::osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic OSN: preferential-attachment graph, binary labels
    //    (think gender in a user profile).
    let mut rng = StdRng::seed_from_u64(42);
    let g = barabasi_albert(10_000, 10, &mut rng);
    let mut labels = vec![Vec::new(); g.num_nodes()];
    assign_binary_labels(&mut labels, 0.45, &mut rng);
    let g = with_labels(&g, &labels);

    // 2. The question: how many label-1–label-2 friendships are there?
    let target = TargetLabel::new(LabelId(1), LabelId(2));
    let truth = GroundTruth::compute(&g, target);
    println!(
        "graph: |V|={} |E|={}   target {}   true F = {}",
        g.num_nodes(),
        g.num_edges(),
        target,
        truth.f
    );

    // 3. Estimate through the restricted API with a 5%|V| call budget.
    let budget = g.num_nodes() / 20;
    let cfg = RunConfig {
        burn_in: 500,
        ..RunConfig::default()
    };
    println!(
        "budget: {budget} API calls (5% of |V|), burn-in {}",
        cfg.burn_in
    );
    println!(
        "{:<24} {:>12} {:>10} {:>12}",
        "algorithm", "estimate", "rel.err", "API calls"
    );
    for alg in algorithms::all_paper(0.2, 0.5) {
        let osn = SimulatedOsn::new(&g);
        let est = alg
            .estimate(&osn, target, budget, &cfg, &mut rng)
            .expect("estimation failed");
        let rel = (est - truth.f as f64) / truth.f as f64;
        println!(
            "{:<24} {:>12.1} {:>9.1}% {:>12}",
            alg.abbrev(),
            est,
            100.0 * rel,
            osn.stats().total_calls()
        );
    }
}
