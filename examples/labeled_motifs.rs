//! The paper's future work (§6), implemented: estimating the number of
//! **wedges and triangles refined by users' labels** via random walk —
//! plus the `|V|`/`|E|` estimation the paper lists as prior knowledge, so
//! nothing about the OSN needs to be known up front.
//!
//! Scenario: in a three-community OSN (labels 1, 2, 3), count
//! "brokerage wedges" (a label-2 user bridging a label-1 and a label-3
//! user) and fully mixed triangles (one user of each label).
//!
//! ```sh
//! cargo run --release --example labeled_motifs
//! ```

use labelcount::core::motifs::{estimate_labeled_triangles, estimate_labeled_wedges};
use labelcount::core::size::estimate_graph_size;
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::labels::with_labels;
use labelcount::graph::motifs::{count_labeled_triangles, count_labeled_wedges, TargetTriple};
use labelcount::graph::LabelId;
use labelcount::osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let g = barabasi_albert(8_000, 8, &mut rng);
    let labels: Vec<Vec<LabelId>> = (0..g.num_nodes())
        .map(|i| vec![LabelId(1 + (i % 3) as u32)])
        .collect();
    let g = with_labels(&g, &labels);

    // Step 0: the paper assumes |V| and |E| are known; estimate them from
    // the walk itself (Katzir-style collision estimator) to show the
    // pipeline is self-contained.
    let osn = SimulatedOsn::new(&g);
    let size = estimate_graph_size(&osn, 6_000, 300, &mut rng).unwrap();
    println!(
        "size estimation: n̂ = {:.0} (true {}), Ê = {:.0} (true {}), {} collisions",
        size.num_nodes,
        g.num_nodes(),
        size.num_edges,
        g.num_edges(),
        size.collisions
    );

    // The brokerage wedge: 1 – 2 – 3 (center label 2).
    let wedge = TargetTriple::new(LabelId(1), LabelId(2), LabelId(3));
    let w_true = count_labeled_wedges(&g, wedge);
    // The fully mixed triangle: one user of each label.
    let tri = TargetTriple::new(LabelId(1), LabelId(2), LabelId(3));
    let t_true = count_labeled_triangles(&g, tri);
    println!("\nexact ground truth: {w_true} target wedges, {t_true} target triangles");

    println!(
        "\n{:>10} {:>14} {:>9} {:>14} {:>9}",
        "budget", "wedges", "rel.err", "triangles", "rel.err"
    );
    for budget in [2_000usize, 8_000, 32_000] {
        let osn = SimulatedOsn::new(&g);
        let w = estimate_labeled_wedges(&osn, wedge, budget, 300, &mut rng).unwrap();
        let osn = SimulatedOsn::new(&g);
        let t = estimate_labeled_triangles(&osn, tri, budget, 300, &mut rng).unwrap();
        println!(
            "{:>10} {:>14.0} {:>8.1}% {:>14.0} {:>8.1}%",
            budget,
            w,
            100.0 * (w - w_true as f64) / w_true as f64,
            t,
            100.0 * (t - t_true as f64) / t_true as f64,
        );
    }
    println!(
        "\nBoth estimators reuse the NeighborExploration machinery: stationary node\n\
         samples, per-node motif counts from neighborhood exploration, and the\n\
         2|E|/d(u) Hansen-Hurwitz correction (divided by 3 for triangles, which are\n\
         seen from each of their corners)."
    );
}
