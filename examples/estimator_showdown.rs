//! Reproduces the paper's Figures 1–2 in miniature: how the relative count
//! of target edges `F/|E|` decides which estimator family wins.
//!
//! Sweeps target-edge frequency from very rare to abundant on one graph
//! (by choosing label pairs of different frequencies) and prints the
//! NRMSE of the five proposed estimators at a fixed 5%|V| API budget.
//!
//! ```sh
//! cargo run --release --example estimator_showdown
//! ```

use labelcount::core::{algorithms, RunConfig};
use labelcount::graph::gen::barabasi_albert;
use labelcount::graph::ground_truth::all_pair_counts;
use labelcount::graph::labels::{degree_bucket_labels, with_labels};
use labelcount::graph::stats::degree_quantile_bounds;
use labelcount::graph::GroundTruth;
use labelcount::osn::SimulatedOsn;
use labelcount::stats::{nrmse, replicate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Degree-bucket labels (the paper's Orkut/LiveJournal setting) give a
    // wide spread of pair frequencies on one graph.
    let mut rng = StdRng::seed_from_u64(3);
    let g = barabasi_albert(20_000, 12, &mut rng);
    let bounds = degree_quantile_bounds(&g, 10);
    let labels = degree_bucket_labels(&g, &bounds);
    let g = with_labels(&g, &labels);

    // Pick ~8 pairs log-spaced in frequency.
    let counts = all_pair_counts(&g);
    let mut pairs: Vec<_> = counts
        .iter()
        .filter(|(_, &c)| c >= 20)
        .map(|(&t, &c)| (t, c))
        .collect();
    pairs.sort_by_key(|&(_, c)| c);
    let picks: Vec<_> = (0..8).map(|i| pairs[(i * (pairs.len() - 1)) / 7]).collect();

    let budget = g.num_nodes() / 20;
    let cfg = RunConfig {
        burn_in: 300,
        ..RunConfig::default()
    };
    let algs = algorithms::proposed();
    let reps = 60;

    print!("{:>10} {:>8}", "F/|E|", "F");
    for a in &algs {
        print!(" {:>10}", a.abbrev().replace("Neighbor", "N"));
    }
    println!();

    for (target, f) in picks {
        let truth = GroundTruth::compute(&g, target);
        assert_eq!(truth.f, f);
        print!("{:>10.2e} {:>8}", f as f64 / g.num_edges() as f64, f);
        for alg in &algs {
            let estimates = replicate(reps, 8, f as u64, |_i, seed| {
                let osn = SimulatedOsn::new(&g);
                let mut rng = StdRng::seed_from_u64(seed);
                alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap()
            });
            print!(" {:>10.3}", nrmse(&estimates, f as f64));
        }
        println!();
    }
    println!(
        "\nReading the columns top to bottom: NeighborExploration dominates while the\n\
         target is rare, and NeighborSample catches up (or wins) once target edges\n\
         are a sizable fraction of all edges - the paper's Figures 1-2."
    );
}
