//! The paper's second motivating scenario (§1): an airline considers a new
//! route between China and Austria and wants to know how many
//! China–Austria friendships exist in an OSN — an indicator of demand.
//!
//! The twist demonstrated here: the answer must come with an accuracy
//! contract. We use the theoretical bounds of Theorems 4.1–4.5 to pick a
//! sampler, then verify empirically that the estimate lands inside the
//! `(ε, δ)` band.
//!
//! ```sh
//! cargo run --release --example airline_route
//! ```

use labelcount::core::bounds::{all_bounds, ApproxParams};
use labelcount::core::{Algorithm, NeHansenHurwitz, RunConfig};
use labelcount::graph::gen::{planted_communities, PlantedCommunityConfig};
use labelcount::graph::labels::{assign_zipf_location_labels, with_labels};
use labelcount::graph::{GroundTruth, LabelId, TargetLabel};
use labelcount::osn::SimulatedOsn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 40k users, 30 countries; country 2 plays "China" (large), country
    // 5 plays "Austria" (mid-sized).
    let mut rng = StdRng::seed_from_u64(99);
    let pg = planted_communities(
        &PlantedCommunityConfig {
            n: 40_000,
            m: 12,
            communities: 30,
            p_in: 0.75,
        },
        &mut rng,
    );
    let mut labels = vec![Vec::new(); pg.graph.num_nodes()];
    assign_zipf_location_labels(&mut labels, &pg.community, 30, 1.0, &mut rng);
    let g = with_labels(&pg.graph, &labels);

    let target = TargetLabel::new(LabelId(2), LabelId(5));
    let truth = GroundTruth::compute(&g, target);
    println!(
        "China(2)-Austria(5) friendships: exact F = {} of {} edges ({:.4}%)",
        truth.f,
        g.num_edges(),
        100.0 * truth.relative_count(&g)
    );

    // What do the theorems say about the sample sizes needed for a
    // (0.3, 0.2)-approximation? (Chebyshev-based, hence conservative.)
    let p = ApproxParams::new(0.3, 0.2);
    let names = [
        "NeighborSample-HH",
        "NeighborSample-HT",
        "NeighborExploration-HH",
        "NeighborExploration-HT",
        "NeighborExploration-RW",
    ];
    println!("\nTheorems 4.1-4.5 sample-size bounds for eps=0.3, delta=0.2:");
    let bounds = all_bounds(&g, &truth, p);
    let mut best = 0;
    for (i, (n, b)) in names.iter().zip(&bounds).enumerate() {
        println!("  {n:<24} k >= {b:.2e}");
        if *b < bounds[best] {
            best = i;
        }
    }
    println!("  -> smallest bound: {}", names[best]);

    // Run the bound-recommended estimator (NE-HH on rare labels) many
    // times and check the (eps, delta) contract empirically. Note the
    // empirical sample need is far below the Chebyshev bound, exactly as
    // the paper observes about its Tables 18-22.
    let cfg = RunConfig {
        burn_in: 400,
        ..RunConfig::default()
    };
    let budget = g.num_nodes() / 5; // 20%|V| API calls
    let reps = 100;
    let mut inside = 0;
    for i in 0..reps {
        let osn = SimulatedOsn::new(&g);
        let mut rng = StdRng::seed_from_u64(5_000 + i);
        let est = NeHansenHurwitz
            .estimate(&osn, target, budget, &cfg, &mut rng)
            .unwrap();
        let f = truth.f as f64;
        if est > (1.0 - p.epsilon) * f && est < (1.0 + p.epsilon) * f {
            inside += 1;
        }
    }
    println!(
        "\nempirical check at {budget} API calls: {inside}/{reps} estimates inside \
         the +/-{:.0}% band (contract requires >= {:.0}%)",
        100.0 * p.epsilon,
        100.0 * (1.0 - p.delta)
    );
}
