//! The paper's motivating scenario (§1): an education institution wants to
//! know whether a new Spanish course in Hong Kong is viable, by estimating
//! the number of friendships between users living in Hong Kong and users
//! living in Spain — without crawling the whole network.
//!
//! This example builds a location-labeled OSN with homophilous
//! communities (people befriend locals), then runs the paper's
//! recommendation for rare labels — NeighborExploration — against
//! NeighborSample at increasing API budgets, showing how quickly each
//! converges.
//!
//! ```sh
//! cargo run --release --example course_planning
//! ```

use labelcount::core::{Algorithm, NeHansenHurwitz, NsHansenHurwitz, RunConfig};
use labelcount::graph::gen::{planted_communities, PlantedCommunityConfig};
use labelcount::graph::labels::{assign_zipf_location_labels, with_labels, LabelNames};
use labelcount::graph::{GroundTruth, LabelId, TargetLabel};
use labelcount::osn::SimulatedOsn;
use labelcount::stats::{nrmse, replicate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 30k-user OSN with 25 locations; location 3 plays "Hong Kong" and
    // location 7 plays "Spain" (rare labels in each other's neighborhoods
    // since friendships are 80% within-location).
    let mut rng = StdRng::seed_from_u64(7);
    let pg = planted_communities(
        &PlantedCommunityConfig {
            n: 30_000,
            m: 10,
            communities: 25,
            p_in: 0.8,
        },
        &mut rng,
    );
    let mut labels = vec![Vec::new(); pg.graph.num_nodes()];
    assign_zipf_location_labels(&mut labels, &pg.community, 25, 1.0, &mut rng);
    let g = with_labels(&pg.graph, &labels);

    let mut names = LabelNames::new();
    names.insert(LabelId(3), "Hong Kong");
    names.insert(LabelId(7), "Spain");
    let target = TargetLabel::new(LabelId(3), LabelId(7));
    let truth = GroundTruth::compute(&g, target);
    println!(
        "question: how many {}–{} friendships?   exact answer: {} ({:.4}% of all {} edges)",
        names.get(target.first()).unwrap(),
        names.get(target.second()).unwrap(),
        truth.f,
        100.0 * truth.relative_count(&g),
        g.num_edges()
    );

    let cfg = RunConfig {
        burn_in: 400,
        ..RunConfig::default()
    };
    let reps = 60;
    println!(
        "\n{:>10} {:>22} {:>22}   ({} replications each)",
        "budget", "NeighborSample-HH", "NeighborExploration-HH", reps
    );
    for pct in [1, 2, 5, 10] {
        let budget = g.num_nodes() * pct / 100;
        let run = |alg: &'static dyn Algorithm| {
            let estimates = replicate(reps, 8, 1000 + pct as u64, |_i, seed| {
                let osn = SimulatedOsn::new(&g);
                let mut rng = StdRng::seed_from_u64(seed);
                alg.estimate(&osn, target, budget, &cfg, &mut rng).unwrap()
            });
            nrmse(&estimates, truth.f as f64)
        };
        let ns = run(&NsHansenHurwitz);
        let ne = run(&NeHansenHurwitz);
        println!(
            "{:>8}%|V| {:>15.3} NRMSE {:>15.3} NRMSE   {}",
            pct,
            ns,
            ne,
            if ne < ns {
                "-> exploration wins (rare target)"
            } else {
                "-> plain sampling wins"
            }
        );
    }
    println!(
        "\nAs in the paper (§5.3): for rare cross-location friendships, exploring the\n\
         neighborhoods of label-carrying users finds target edges with much higher\n\
         probability than uniform edge sampling."
    );
}
